"""Continuous monitoring: recorder cadence, alert lifecycle, health.

The acceptance contract this file pins down:

* the recorder samples on its sim-clock cadence from the engine's pump
  points, and two identical seeded TPC-C + replication runs produce
  byte-identical ``SHOW HISTORY`` output and alert event timelines;
* an induced replica-lag scenario (apply paused) deterministically
  fires then clears ``repl.apply_lag``, observable through both
  ``engine.active_alerts()`` and SQL ``SHOW ALERTS``, with
  ``SHOW HEALTH`` transitioning OK → DEGRADED → OK;
* ``DROP DATABASE`` / ``promote_replica`` purge the dead subsystem's
  gauges, recorded series and alert conditions — no ghost alerts.
"""

from __future__ import annotations

import json

import pytest

from repro import DatabaseConfig, Engine
from repro.config import CostModel, MonitorConfig, SimEnv
from repro.obs.alerts import AlertEngine, AlertRule
from repro.obs.export import histogram_percentiles, histogram_quantile
from repro.obs.health import CRITICAL, DEGRADED, OK, rollup
from repro.obs.timeseries import MetricsRecorder, summarize
from repro.sim.clock import SimClock
from repro.sim.device import SAS_10K
from repro.workload import TpccScale, load_tpcc
from repro.workload.driver import TpccDriver

# ---------------------------------------------------------------------------
# Recorder unit behavior
# ---------------------------------------------------------------------------


def _recorder(interval_s=1.0, capacity=8):
    from repro.obs.registry import MetricsRegistry

    clock = SimClock()
    registry = MetricsRegistry()
    state = {"v": 0}
    registry.gauge("a.v", lambda: state["v"])
    recorder = MetricsRecorder(
        registry, clock, interval_s=interval_s, capacity=capacity
    )
    return recorder, clock, state


class TestRecorder:
    def test_cadence_gates_sampling(self):
        recorder, clock, state = _recorder(interval_s=1.0)
        recorder.start()  # immediate first sample
        assert recorder.samples_taken == 1
        assert recorder.maybe_sample() is False  # not due yet
        clock.advance(0.5)
        assert recorder.maybe_sample() is False
        clock.advance(0.5)
        state["v"] = 7
        assert recorder.maybe_sample() is True
        assert recorder.points("a.v") == [(0.0, 0), (1.0, 7)]

    def test_window_summary_and_rate(self):
        recorder, clock, state = _recorder()
        recorder.start()
        for value in (10, 20, 60):
            clock.advance(1.0)
            state["v"] = value
            recorder.maybe_sample()
        summary = recorder.window("a.v")
        assert summary["points"] == 4
        assert summary["last"] == 60
        assert summary["min"] == 0
        assert summary["max"] == 60
        assert summary["mean"] == pytest.approx(22.5)
        assert summary["rate_per_s"] == pytest.approx(20.0)  # (60-0)/3s
        # Trailing window keeps only recent points.
        windowed = recorder.window("a.v", window_s=1.5)
        assert windowed["points"] == 2
        assert windowed["rate_per_s"] == pytest.approx(40.0)  # (60-20)/1s

    def test_ring_capacity_bounds_history(self):
        recorder, clock, state = _recorder(capacity=4)
        recorder.start()
        for i in range(10):
            clock.advance(1.0)
            state["v"] = i
            recorder.maybe_sample()
        points = recorder.points("a.v")
        assert len(points) == 4
        assert points[-1][1] == 9  # newest survives, oldest evicted

    def test_empty_summary_shape(self):
        assert summarize([]) == {
            "points": 0,
            "first_s": None,
            "last_s": None,
            "last": None,
            "min": None,
            "max": None,
            "mean": None,
            "rate_per_s": 0.0,
        }

    def test_remove_prefix_drops_series(self):
        recorder, clock, _state = _recorder()
        recorder.registry.gauge("replica.r1.lag", lambda: 1)
        recorder.start()
        assert recorder.names("replica.*") == ["replica.r1.lag"]
        recorder.remove_prefix("replica.r1.")
        assert recorder.names("replica.*") == []
        assert recorder.names() == ["a.v"]


# ---------------------------------------------------------------------------
# Histogram percentiles
# ---------------------------------------------------------------------------


class TestHistogramQuantile:
    HIST = {"buckets": [[1.0, 2], [2.0, 4], [4.0, 2]], "overflow": 2, "count": 10, "sum": 25.0}

    def test_interpolates_within_buckets(self):
        assert histogram_quantile(self.HIST, 0.2) == pytest.approx(1.0)
        assert histogram_quantile(self.HIST, 0.5) == pytest.approx(1.75)
        assert histogram_quantile(self.HIST, 0.8) == pytest.approx(4.0)

    def test_overflow_clamps_to_top_bound(self):
        assert histogram_quantile(self.HIST, 0.99) == 4.0
        assert histogram_quantile(self.HIST, 1.0) == 4.0

    def test_empty_histogram_is_none(self):
        empty = {"buckets": [[1.0, 0]], "overflow": 0, "count": 0, "sum": 0.0}
        assert histogram_quantile(empty, 0.5) is None

    def test_percentile_labels(self):
        assert set(histogram_percentiles(self.HIST)) == {"p50", "p95", "p99"}

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError):
            histogram_quantile(self.HIST, 1.5)


# ---------------------------------------------------------------------------
# Alert engine unit behavior
# ---------------------------------------------------------------------------


def _alert_rig(rule: AlertRule, interval_s=1.0):
    recorder, clock, state = _recorder(interval_s=interval_s)
    engine = AlertEngine(recorder)
    engine.add_rule(rule)
    recorder.start()

    def step(value, dt=1.0):
        clock.advance(dt)
        state["v"] = value
        recorder.maybe_sample()
        return engine.evaluate()

    return engine, step


class TestAlertEngine:
    def test_threshold_fires_and_clears(self):
        engine, step = _alert_rig(AlertRule(name="hot", metric="a.v", threshold=10))
        assert step(5) == []
        events = step(15)
        assert [e["event"] for e in events] == ["firing"]
        assert engine.active()[0]["rule"] == "hot"
        events = step(3)
        assert [e["event"] for e in events] == ["cleared"]
        assert engine.active() == []
        # The cleared condition stays visible with its full lifecycle.
        (row,) = engine.rows()
        assert row["state"] == "cleared"
        assert row["fired_count"] == 1
        assert row["fired_at"] is not None and row["cleared_at"] is not None

    def test_for_duration_debounce(self):
        engine, step = _alert_rig(
            AlertRule(name="hot", metric="a.v", threshold=10, for_s=2.0)
        )
        assert step(15) == []  # breach starts the pending window
        assert step(15) == []  # 1s held — not yet
        events = step(15)  # 2s held — fires
        assert [e["event"] for e in events] == ["firing"]

    def test_debounce_resets_on_recovery(self):
        engine, step = _alert_rig(
            AlertRule(name="hot", metric="a.v", threshold=10, for_s=2.0)
        )
        step(15)
        step(5)  # recovered while pending: no fire, no event
        assert engine.active() == []
        step(15)
        step(15)
        assert step(15)[0]["event"] == "firing"  # full hold needed again

    def test_derivative_rule(self):
        engine, step = _alert_rig(
            AlertRule(
                name="climbing",
                metric="a.v",
                kind="derivative",
                threshold=5.0,
                window_s=2.0,
            )
        )
        assert step(1) == []  # ~0.5/s
        events = step(100)  # ~50/s over the window
        assert [e["event"] for e in events] == ["firing"]

    def test_absence_rule_fires_on_missing_metric(self):
        recorder, clock, _state = _recorder()
        engine = AlertEngine(recorder)
        engine.add_rule(
            AlertRule(name="gone", metric="b.*", kind="absence", window_s=2.0)
        )
        recorder.start()
        events = engine.evaluate()
        assert [e["event"] for e in events] == ["firing"]
        assert engine.active()[0]["metric"] == "b.*"

    def test_absence_rule_fires_on_staleness(self):
        recorder, clock, state = _recorder()
        engine = AlertEngine(recorder)
        engine.add_rule(
            AlertRule(name="stale", metric="a.v", kind="absence", window_s=2.0)
        )
        recorder.start()
        assert engine.evaluate() == []  # fresh sample
        clock.advance(5.0)  # no samples taken for 5s
        events = engine.evaluate()
        assert [e["event"] for e in events] == ["firing"]
        recorder.sample()
        events = engine.evaluate()
        assert [e["event"] for e in events] == ["cleared"]

    def test_guard_metric_suppresses_until_floor(self):
        recorder, clock, state = _recorder()
        lookups = {"n": 0}
        recorder.registry.gauge("a.lookups", lambda: lookups["n"])
        engine = AlertEngine(recorder)
        engine.add_rule(
            AlertRule(
                name="floor",
                metric="a.v",
                op="<",
                threshold=10,
                guard_metric="a.lookups",
                guard_min=100,
            )
        )
        recorder.start()
        assert engine.evaluate() == []  # v=0 < 10 but guard closed
        lookups["n"] = 150
        clock.advance(1.0)
        recorder.maybe_sample()
        events = engine.evaluate()
        assert [e["event"] for e in events] == ["firing"]

    def test_subscriber_callbacks(self):
        engine, step = _alert_rig(AlertRule(name="repl.lag", metric="a.v", threshold=10))
        seen = []
        engine.subscribe("repl.*", seen.append)
        engine.subscribe("other.*", lambda e: pytest.fail("wrong pattern notified"))
        step(15)
        step(0)
        assert [e["event"] for e in seen] == ["firing", "cleared"]

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", metric="a", kind="nope")
        with pytest.raises(ValueError):
            AlertRule(name="x", metric="a", op="!=")
        with pytest.raises(ValueError):
            AlertRule(name="x", metric="a", severity="mild")
        with pytest.raises(ValueError):
            AlertRule(name="x", metric="a", kind="absence")  # needs window_s
        engine, _step = _alert_rig(AlertRule(name="dup", metric="a.v"))
        with pytest.raises(ValueError):
            engine.add_rule(AlertRule(name="dup", metric="a.v"))


# ---------------------------------------------------------------------------
# Health rollup
# ---------------------------------------------------------------------------


class TestHealth:
    def test_verdict_ladder(self):
        engine, step = _alert_rig(
            AlertRule(name="hot", metric="a.v", threshold=10, subsystem="repl")
        )
        doc = rollup(engine)
        assert doc["overall"] == OK
        assert doc["subsystems"]["repl"]["verdict"] == OK
        step(15)
        doc = rollup(engine)
        assert doc["overall"] == DEGRADED
        assert doc["subsystems"]["repl"]["alerts"][0]["rule"] == "hot"

    def test_critical_wins(self):
        recorder, clock, state = _recorder()
        engine = AlertEngine(recorder)
        engine.add_rule(AlertRule(name="warn", metric="a.v", threshold=10, subsystem="s1"))
        engine.add_rule(
            AlertRule(
                name="crit",
                metric="a.v",
                threshold=20,
                severity="critical",
                subsystem="s2",
            )
        )
        recorder.start()
        clock.advance(1.0)
        state["v"] = 50
        recorder.maybe_sample()
        engine.evaluate()
        doc = rollup(engine)
        assert doc["overall"] == CRITICAL
        assert doc["subsystems"]["s1"]["verdict"] == DEGRADED
        assert doc["subsystems"]["s2"]["verdict"] == CRITICAL


# ---------------------------------------------------------------------------
# Engine integration: the induced replica-lag scenario
# ---------------------------------------------------------------------------


def _monitored_engine(**config_changes):
    defaults = dict(
        sample_interval_s=0.01, apply_lag_bytes=8 * 1024, slow_query_sim_s=0.0
    )
    defaults.update(config_changes)
    env = SimEnv(SAS_10K, SAS_10K, CostModel())
    engine = Engine(
        env,
        config=DatabaseConfig(page_size=1024, buffer_pool_pages=64),
        monitor_config=MonitorConfig(**defaults),
    )
    engine.create_database("shop")
    engine.sql(
        "CREATE TABLE items (id INT NOT NULL, qty INT, PRIMARY KEY (id))",
        "shop",
    )
    return engine


def _run_lag_scenario(engine):
    """Write burst with apply paused, then catch up; returns the three
    SHOW HEALTH overall verdicts (before / during / after)."""
    engine.add_replica("shop", "standby")
    engine.replication_tick()
    engine.start_monitor()
    verdicts = [engine.sql("SHOW HEALTH", "shop").rows[0][1]]
    for i in range(150):
        engine.sql(f"INSERT INTO items VALUES ({i}, {i})", "shop")
    verdicts.append(engine.sql("SHOW HEALTH", "shop").rows[0][1])
    engine.replication_tick()
    engine.env.clock.advance(engine.monitor_config.sample_interval_s)
    engine.sql("SELECT COUNT(*) FROM items", "shop")
    verdicts.append(engine.sql("SHOW HEALTH", "shop").rows[0][1])
    return verdicts


class TestLagScenario:
    def test_health_transitions_ok_degraded_ok(self):
        engine = _monitored_engine()
        assert _run_lag_scenario(engine) == [OK, DEGRADED, OK]

    def test_alert_observed_via_engine_api_and_sql(self):
        engine = _monitored_engine()
        engine.add_replica("shop", "standby")
        engine.replication_tick()
        engine.start_monitor()
        assert engine.active_alerts() == []
        for i in range(150):
            engine.sql(f"INSERT INTO items VALUES ({i}, {i})", "shop")
        # Engine API: the lag alert is firing.
        (active,) = engine.active_alerts()
        assert active["rule"] == "repl.apply_lag"
        assert active["metric"] == "replica.standby.apply_lag_bytes"
        assert active["state"] == "firing"
        # SQL: the same condition through SHOW ALERTS.
        rows = engine.sql("SHOW ALERTS", "shop").rows
        assert [(r[0], r[2]) for r in rows] == [("repl.apply_lag", "firing")]
        # Catch up; both surfaces agree it cleared.
        engine.replication_tick()
        engine.env.clock.advance(engine.monitor_config.sample_interval_s)
        engine.sql("SELECT COUNT(*) FROM items", "shop")
        assert engine.active_alerts() == []
        rows = engine.sql("SHOW ALERTS", "shop").rows
        assert [(r[0], r[2]) for r in rows] == [("repl.apply_lag", "cleared")]
        # The timeline recorded exactly one fire→clear pair.
        assert [e["event"] for e in engine.alert_events()] == ["firing", "cleared"]

    def test_callback_registry_sees_lag_transitions(self):
        engine = _monitored_engine()
        events = []
        engine.add_replica("shop", "standby")
        engine.replication_tick()
        engine.start_monitor()
        engine.on_alert("repl.*", events.append)
        for i in range(150):
            engine.sql(f"INSERT INTO items VALUES ({i}, {i})", "shop")
        engine.replication_tick()
        engine.env.clock.advance(engine.monitor_config.sample_interval_s)
        engine.sql("SELECT COUNT(*) FROM items", "shop")
        assert [e["event"] for e in events] == ["firing", "cleared"]
        assert events[0]["rule"] == "repl.apply_lag"

    def test_monitor_off_degrades_gracefully(self):
        engine = _monitored_engine()
        assert engine.active_alerts() == []
        assert engine.monitor_history() == {}
        assert engine.alert_events() == []
        doc = engine.health()
        assert doc["overall"] == OK
        assert doc["monitoring"] is False
        assert engine.sql("SHOW ALERTS", "shop").rows == []
        assert engine.sql("SHOW HISTORY", "shop").rows == []
        with pytest.raises(ValueError):
            engine.on_alert("*", lambda e: None)

    def test_start_monitor_idempotent_but_not_reconfigurable(self):
        engine = _monitored_engine()
        monitor = engine.start_monitor()
        assert engine.start_monitor() is monitor
        with pytest.raises(ValueError):
            engine.start_monitor(config=MonitorConfig())
        engine.stop_monitor()
        assert engine.monitor is None
        assert engine.start_monitor() is not monitor


# ---------------------------------------------------------------------------
# Drop / promote lifecycle: no ghost state
# ---------------------------------------------------------------------------


class TestLifecyclePurge:
    def test_drop_database_purges_metrics_history_and_alerts(self):
        engine = _monitored_engine(pin_lag_bytes=1)  # hair-trigger retention rule
        engine.create_database("scratch")
        engine.sql(
            "CREATE TABLE t (id INT NOT NULL, PRIMARY KEY (id))", "scratch"
        )
        engine.start_monitor()
        for i in range(40):
            engine.sql(f"INSERT INTO t VALUES ({i})", "scratch")
        # The database's gauges were recorded...
        assert engine.monitor_history("log.scratch.*")
        assert any(
            name.startswith("log.scratch.")
            for name in engine.metrics.names("log.scratch.*")
        )
        engine.drop_database("scratch")
        # ... and a drop leaves nothing behind: no gauges, no series,
        # no alert conditions anchored to the dead database.
        assert engine.metrics.names("log.scratch.*") == []
        assert engine.metrics.names("retention.scratch.*") == []
        assert engine.monitor_history("log.scratch.*") == {}
        assert engine.monitor_history("retention.scratch.*") == {}
        assert not any(
            row["metric"].startswith(("log.scratch.", "retention.scratch."))
            for row in engine.monitor.alert_rows()
        )
        flat = json.dumps(engine.metrics_snapshot(), sort_keys=True)
        assert "scratch" not in flat

    def test_drop_replica_purges_lag_series_and_conditions(self):
        engine = _monitored_engine()
        engine.add_replica("shop", "standby")
        engine.replication_tick()
        engine.start_monitor()
        for i in range(150):
            engine.sql(f"INSERT INTO items VALUES ({i}, {i})", "shop")
        assert engine.active_alerts()  # lag alert is firing
        engine.drop_replica("standby")
        assert engine.active_alerts() == []  # no ghost alert on a dead replica
        assert engine.monitor_history("replica.standby.*") == {}
        assert engine.metrics.names("replica.standby.*") == []

    def test_promote_replica_purges_replica_series(self):
        engine = _monitored_engine()
        engine.add_replica("shop", "standby")
        engine.replication_tick()
        engine.start_monitor()
        for i in range(150):
            engine.sql(f"INSERT INTO items VALUES ({i}, {i})", "shop")
        assert engine.active_alerts()
        engine.replication_tick()  # promote requires a caught-up timeline
        engine.promote_replica("standby")
        assert engine.active_alerts() == []
        assert engine.monitor_history("replica.standby.*") == {}
        assert "standby" in engine.databases


# ---------------------------------------------------------------------------
# Slow-statement capture
# ---------------------------------------------------------------------------


class TestSlowQueries:
    def test_capture_over_threshold_with_span_tree(self):
        engine = _monitored_engine(slow_query_sim_s=1e-6)
        for i in range(3):
            engine.sql(f"INSERT INTO items VALUES ({i}, {i})", "shop")
        rows = engine.sql("SHOW SLOW QUERIES", "shop").rows
        assert rows, "priced inserts must exceed a 1µs threshold"
        assert "Insert" in [row[1] for row in rows]
        # The retained entry carries the rendered span tree.
        entry = engine.slow_queries.entries()[0]
        assert any("sql.execute" in line for line in entry["spans"])

    def test_threshold_zero_disables_capture(self):
        engine = _monitored_engine(slow_query_sim_s=0.0)
        engine.sql("INSERT INTO items VALUES (1, 1)", "shop")
        assert engine.sql("SHOW SLOW QUERIES", "shop").rows == []

    def test_ring_is_bounded(self):
        engine = _monitored_engine(slow_query_sim_s=1e-6, slow_query_capacity=2)
        for i in range(6):
            engine.sql(f"INSERT INTO items VALUES ({i}, {i})", "shop")
        assert len(engine.sql("SHOW SLOW QUERIES", "shop").rows) == 2
        assert engine.slow_queries.captured >= 6

    def test_explicit_trace_still_works_alongside_capture(self):
        engine = _monitored_engine(slow_query_sim_s=1e-6)
        engine.sql("INSERT INTO items VALUES (1, 1)", "shop")
        result = engine.sql("TRACE SELECT * FROM items", "shop")
        assert any("sql.execute" in line for (line,) in result.rows)
        with engine.trace("manual") as handle:
            engine.sql("SELECT COUNT(*) FROM items", "shop")
        assert handle.root is not None


# ---------------------------------------------------------------------------
# SQL surface parsing
# ---------------------------------------------------------------------------


class TestShowParsing:
    def test_new_show_forms_parse(self):
        from repro.sql.parser import parse_script

        assert parse_script("SHOW HEALTH")[0].what == "HEALTH"
        assert parse_script("SHOW ALERTS")[0].what == "ALERTS"
        stmt = parse_script("SHOW HISTORY 'replica.*'")[0]
        assert stmt.what == "HISTORY" and stmt.like == "replica.*"
        stmt = parse_script("SHOW HISTORY LIKE 'pool.*'")[0]
        assert stmt.like == "pool.*"
        assert parse_script("SHOW HISTORY")[0].like is None
        assert parse_script("SHOW SLOW QUERIES")[0].what == "SLOW QUERIES"

    def test_slow_needs_queries(self):
        from repro.errors import SqlSyntaxError
        from repro.sql.parser import parse_script

        with pytest.raises(SqlSyntaxError):
            parse_script("SHOW SLOW")

    def test_show_history_rows_have_summaries(self):
        engine = _monitored_engine()
        engine.start_monitor()
        for i in range(30):
            engine.sql(f"INSERT INTO items VALUES ({i}, {i})", "shop")
        rows = engine.sql("SHOW HISTORY 'log.shop.end_lsn'", "shop").rows
        assert len(rows) == 1
        metric, points, last, lo, hi, mean, rate = rows[0]
        assert metric == "log.shop.end_lsn"
        assert points >= 1 and last >= lo and hi >= last


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


class TestMonitorConfig:
    def test_validate_rejects_nonsense(self):
        for bad in (
            dict(sample_interval_s=0),
            dict(history_samples=1),
            dict(events_capacity=0),
            dict(version_store_hit_rate_floor=1.5),
            dict(pool_occupancy=0.0),
            dict(slow_query_sim_s=-1),
            dict(slow_query_capacity=0),
        ):
            with pytest.raises(ValueError):
                MonitorConfig(**bad).validate()
        MonitorConfig().validate()  # defaults are sane


# ---------------------------------------------------------------------------
# Determinism: the acceptance contract
# ---------------------------------------------------------------------------


def _seeded_monitored_run():
    """One seeded TPC-C + replication run under the monitor; returns the
    rendered SHOW HISTORY rows and the alert event timeline as JSON."""
    env = SimEnv(SAS_10K, SAS_10K, CostModel())
    engine = Engine(
        env,
        monitor_config=MonitorConfig(
            sample_interval_s=0.5, apply_lag_bytes=16 * 1024
        ),
    )
    scale = TpccScale(
        warehouses=1, districts_per_warehouse=2, customers_per_district=6, items=30
    )
    db = engine.create_database("tpcc")
    load_tpcc(db, scale, seed=11)
    engine.add_replica("tpcc", "standby")
    engine.replication_tick()
    engine.start_monitor()
    driver = TpccDriver(
        db, scale, seed=11, think_time_s=0.1, pump=engine.replication_tick
    )
    driver.run_transactions(40)
    history_rows = engine.sql("SHOW HISTORY").rows
    events = engine.alert_events()
    health = engine.sql("SHOW HEALTH").rows
    return (
        json.dumps(history_rows, sort_keys=True),
        json.dumps(events, sort_keys=True),
        json.dumps(health, sort_keys=True),
    )


def test_seeded_monitored_runs_are_byte_identical():
    first = _seeded_monitored_run()
    second = _seeded_monitored_run()
    assert first[0] == second[0]  # SHOW HISTORY output
    assert first[1] == second[1]  # alert event timeline
    assert first[2] == second[2]  # SHOW HEALTH rows
