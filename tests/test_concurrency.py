"""Race-hunting stress suite for the concurrent multi-session engine.

The tentpole test: N worker threads hammer one engine with a mixed
TPC-C write / current-read / AS OF load through
``engine.run_sessions``, then the storm's wake is audited — checkdb
must come back clean, the snapshot pool must hold zero leases, and
every byte budget must balance. Failures here are races: a torn latch,
a lease leaked on an exception path, a dict mutated mid-iteration.

Discipline (enforced by reprolint): no ``time.sleep`` — threads
rendezvous on :class:`threading.Barrier` and the scheduler's blocking
joins do all waiting; the scheduler's faulthandler-armed timeout turns
a deadlock into a stack dump instead of a hung CI job.

Seeds are fixed so the workload *content* is reproducible; thread
interleavings of course are not, which is exactly what makes repeated
CI runs of this file a race hunt.
"""

from __future__ import annotations

import threading

import pytest

from repro.config import DatabaseConfig, SimEnv
from repro.engine.engine import Engine
from repro.engine.scheduler import SchedulerTimeout, SessionScheduler
from repro.tools.checkdb import check_database
from repro.workload import TpccDriver, TpccScale, load_tpcc

#: Small enough to storm quickly, large enough that writers collide on
#: real pages (two warehouses -> shared stock/district b-trees).
STRESS_SCALE = TpccScale(
    warehouses=2,
    districts_per_warehouse=2,
    customers_per_district=6,
    items=40,
)

#: Wall-clock budget per storm: far above any healthy run, low enough
#: that a deadlock fails the suite promptly (with thread stacks).
STORM_TIMEOUT_S = 90.0


def build_stress_engine(seed: int = 7):
    """(engine, db) with TPC-C loaded, monitor armed, ready to storm."""
    engine = Engine(SimEnv.for_tests())
    db = engine.create_database(
        "tpcc", DatabaseConfig(log_cache_blocks=16)
    )
    load_tpcc(db, STRESS_SCALE, seed=seed)
    engine.start_monitor()
    return engine, db


def make_mixed_tasks(engine, db, *, writers, readers, asof_sweeps, txns):
    """The mixed-session task list the storms run.

    Every task blocks on one barrier so the threads genuinely collide
    instead of draining sequentially through the queue.
    """
    total = writers + readers + asof_sweeps + 1
    barrier = threading.Barrier(total)
    t0 = engine.env.clock.now()
    results: dict[str, list] = {"writer": [], "reader": [], "asof": []}
    tally = threading.Lock()

    def writer_task(seed):
        def run():
            driver = TpccDriver(db, STRESS_SCALE, seed=seed)
            barrier.wait(STORM_TIMEOUT_S)
            outcome = driver.run_transactions(txns)
            with tally:
                results["writer"].append(outcome)
            return outcome

        return run

    def reader_task(seed):
        def run():
            barrier.wait(STORM_TIMEOUT_S)
            seen = 0
            with engine.session("tpcc") as session:
                for _ in range(txns):
                    seen += session.execute(
                        "SELECT COUNT(*) FROM district"
                    ).scalar()
            with tally:
                results["reader"].append(seen)
            return seen

        return run

    def asof_task(seed):
        def run():
            driver = TpccDriver(db, STRESS_SCALE, seed=seed)
            barrier.wait(STORM_TIMEOUT_S)
            total_stock = 0
            for _ in range(max(2, txns // 4)):
                total_stock += driver.stock_level_as_of(engine, t0)
            with tally:
                results["asof"].append(total_stock)
            return total_stock

        return run

    def pump_task():
        barrier.wait(STORM_TIMEOUT_S)
        ticks = 0
        for _ in range(txns):
            engine.replication_tick()
            ticks += 1
        return ticks

    tasks = [writer_task(100 + i) for i in range(writers)]
    tasks += [reader_task(200 + i) for i in range(readers)]
    tasks += [asof_task(300 + i) for i in range(asof_sweeps)]
    tasks.append(pump_task)
    return tasks, results


def assert_storm_clean(engine, db, results, *, writers):
    """The post-storm audit every stress variant shares."""
    report = check_database(db)
    assert report.ok, f"checkdb found corruption after the storm: {report}"

    pool = engine.snapshot_pool
    assert pool.active_leases() == 0, "a session leaked a pooled lease"
    assert 0 <= pool.total_bytes() <= pool.budget_bytes
    store = engine.version_store
    assert 0 <= store.total_bytes() <= store.budget_bytes

    committed = sum(r.committed for r in results["writer"])
    rolled_back = sum(r.rolled_back for r in results["writer"])
    attempted = sum(r.transactions for r in results["writer"])
    assert len(results["writer"]) == writers
    assert committed + rolled_back == attempted
    assert committed > 0, "the storm never committed anything"


class TestMixedStorm:
    @pytest.mark.parametrize("workers", [2, 8])
    def test_mixed_load_storm_leaves_engine_clean(self, workers):
        engine, db = build_stress_engine()
        writers = max(1, workers // 2)
        readers = max(1, workers // 4)
        asof_sweeps = max(1, workers // 4)
        tasks, results = make_mixed_tasks(
            engine,
            db,
            writers=writers,
            readers=readers,
            asof_sweeps=asof_sweeps,
            txns=25,
        )
        engine.run_sessions(
            tasks, workers=max(workers, len(tasks)), timeout_s=STORM_TIMEOUT_S
        )
        assert_storm_clean(engine, db, results, writers=writers)

    def test_storm_with_concurrent_pool_pressure(self):
        """AS OF sweeps under a tiny pool budget force eviction races:
        leases must survive concurrent evict_to_budget storms."""
        engine, db = build_stress_engine()
        engine.snapshot_pool.set_budget(1 << 16)
        tasks, results = make_mixed_tasks(
            engine, db, writers=2, readers=1, asof_sweeps=4, txns=12
        )
        engine.run_sessions(tasks, workers=8, timeout_s=STORM_TIMEOUT_S)
        assert_storm_clean(engine, db, results, writers=2)

    def test_results_come_back_in_task_order(self):
        engine, _db = build_stress_engine()
        tasks = [lambda i=i: i * i for i in range(20)]
        assert engine.run_sessions(tasks, workers=6) == [
            i * i for i in range(20)
        ]

    def test_first_task_exception_reraises(self):
        engine, _db = build_stress_engine()

        def boom():
            raise ValueError("task 3 exploded")

        tasks = [lambda: 1, lambda: 2, lambda: 3, boom]
        with pytest.raises(ValueError, match="task 3 exploded"):
            engine.run_sessions(tasks, workers=4)


class TestSchedulerContract:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            SessionScheduler(0)

    def test_empty_batch_is_a_noop(self):
        assert SessionScheduler(4).run([]) == []

    def test_timeout_dumps_and_raises(self):
        """A wedged worker (here: parked on an Event nobody sets until
        after the timeout) must raise SchedulerTimeout, not hang."""
        release = threading.Event()

        def wedged():
            release.wait(30.0)

        try:
            with pytest.raises(SchedulerTimeout):
                SessionScheduler(1).run([wedged], timeout_s=0.25)
        finally:
            release.set()


class TestWriteSerialization:
    def test_explicit_sessions_interleave_atomically(self):
        """Two sessions running explicit BEGIN..COMMIT batches against
        one table: every batch's rows land contiguously committed (the
        write latch spans the whole explicit transaction)."""
        engine = Engine(SimEnv.for_tests())
        db = engine.create_database("bank")
        engine.sql(
            "CREATE TABLE accounts (id INT NOT NULL, balance INT, PRIMARY KEY (id))",
            database="bank",
        )
        with db.transaction() as txn:
            for i in range(4):
                db.insert(txn, "accounts", (i, 100))
        barrier = threading.Barrier(2)

        def transfer(amount, rounds):
            def run():
                barrier.wait(STORM_TIMEOUT_S)
                with engine.session("bank") as session:
                    for _ in range(rounds):
                        session.execute("BEGIN")
                        a = session.execute(
                            "SELECT balance FROM accounts WHERE id = 0"
                        ).scalar()
                        b = session.execute(
                            "SELECT balance FROM accounts WHERE id = 1"
                        ).scalar()
                        session.execute(
                            f"UPDATE accounts SET balance = {a - amount} "
                            f"WHERE id = 0"
                        )
                        session.execute(
                            f"UPDATE accounts SET balance = {b + amount} "
                            f"WHERE id = 1"
                        )
                        session.execute("COMMIT")

            return run

        engine.run_sessions(
            [transfer(5, 20), transfer(-3, 20)],
            workers=2,
            timeout_s=STORM_TIMEOUT_S,
        )
        rows = engine.sql(
            "SELECT balance FROM accounts ORDER BY id", database="bank"
        ).rows
        total = sum(r[0] for r in rows)
        assert total == 400, "a transfer tore: money was created/destroyed"
        assert check_database(db).ok

    def test_session_close_releases_write_latch(self):
        """An abandoned explicit transaction must not wedge the engine:
        close() rolls it back and releases the write latch."""
        engine = Engine(SimEnv.for_tests())
        db = engine.create_database("shop")
        engine.sql(
            "CREATE TABLE t (id INT NOT NULL, v INT, PRIMARY KEY (id))", database="shop"
        )
        session = engine.session("shop")
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1, 1)")
        session.close()  # rollback + latch release, no COMMIT
        # Another session can immediately write; the abandoned insert
        # is gone.
        engine.sql("INSERT INTO t VALUES (2, 2)", database="shop")
        rows = engine.sql("SELECT id FROM t", database="shop").rows
        assert rows == [(2,)]
        assert db.write_latch.acquisitions > 0


class TestLatchCounters:
    def test_contention_is_observable(self):
        """The storm's latch traffic shows up in the Latch counters the
        concurrency bench reports."""
        engine, db = build_stress_engine()
        tasks, results = make_mixed_tasks(
            engine, db, writers=2, readers=2, asof_sweeps=2, txns=10
        )
        engine.run_sessions(tasks, workers=7, timeout_s=STORM_TIMEOUT_S)
        assert db.write_latch.acquisitions > 0
        assert engine.snapshot_pool.latch.acquisitions > 0
        assert db.log.latch.acquisitions > 0
        for latch in (db.write_latch, engine.snapshot_pool.latch):
            assert 0.0 <= latch.contention_ratio() <= 1.0
            stats = latch.stats()
            assert stats["acquisitions"] >= stats["contentions"]
