"""Shared fixtures: zero-cost environments, databases, schemas."""

from __future__ import annotations

import pytest

from repro import (
    Column,
    ColumnType,
    DatabaseConfig,
    Engine,
    SimEnv,
    TableSchema,
)


@pytest.fixture
def env() -> SimEnv:
    """Free-I/O, free-CPU environment for logic tests."""
    return SimEnv.for_tests()


@pytest.fixture
def engine(env) -> Engine:
    return Engine(env)


@pytest.fixture
def small_config() -> DatabaseConfig:
    """Small pages so splits and multi-page structures appear quickly."""
    return DatabaseConfig(page_size=1024, buffer_pool_pages=64)


@pytest.fixture
def db(engine):
    return engine.create_database("testdb")


@pytest.fixture
def small_db(engine, small_config):
    return engine.create_database("smalldb", small_config)


ITEMS_SCHEMA = TableSchema(
    "items",
    (
        Column("id", ColumnType.INT),
        Column("name", ColumnType.STR, max_len=64),
        Column("qty", ColumnType.INT),
    ),
    key=("id",),
)


WIDE_SCHEMA = TableSchema(
    "wide",
    (
        Column("k1", ColumnType.INT),
        Column("k2", ColumnType.STR, max_len=32),
        Column("f", ColumnType.FLOAT),
        Column("b", ColumnType.BOOL),
        Column("blob", ColumnType.BYTES, max_len=200, nullable=True),
        Column("note", ColumnType.STR, max_len=200, nullable=True),
    ),
    key=("k1", "k2"),
)


@pytest.fixture
def items_schema() -> TableSchema:
    return ITEMS_SCHEMA


@pytest.fixture
def wide_schema() -> TableSchema:
    return WIDE_SCHEMA


@pytest.fixture
def items_db(engine):
    """A database with the items table created."""
    database = engine.create_database("itemsdb")
    database.create_table(ITEMS_SCHEMA)
    return database


def fill_items(database, count: int, start: int = 0) -> None:
    """Insert ``count`` rows into the items table in one transaction."""
    with database.transaction() as txn:
        for i in range(start, start + count):
            database.insert(txn, "items", (i, f"item-{i}", i * 10))
