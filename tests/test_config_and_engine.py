"""Configuration validation, engine lifecycle, checkpointer cadence."""

from __future__ import annotations

from datetime import datetime, timezone

import pytest

from repro import DatabaseConfig, Engine, LoggingExtensions, SimClock
from repro.config import CostModel, SimEnv
from repro.engine.boot import BootRecord
from repro.engine.checkpoint import Checkpointer
from repro.errors import CatalogError, SnapshotError
from repro.sim.device import SLC_SSD
from tests.conftest import ITEMS_SCHEMA, fill_items


class TestConfig:
    def test_defaults_valid(self):
        DatabaseConfig().validate()

    def test_bad_page_size(self):
        with pytest.raises(ValueError):
            DatabaseConfig(page_size=100).validate()
        with pytest.raises(ValueError):
            DatabaseConfig(page_size=1000).validate()  # not multiple of 256

    def test_bad_buffer_pool(self):
        with pytest.raises(ValueError):
            DatabaseConfig(buffer_pool_pages=2).validate()

    def test_bad_retention(self):
        with pytest.raises(ValueError):
            DatabaseConfig(undo_interval_s=0).validate()

    def test_bad_image_interval(self):
        config = DatabaseConfig().with_extensions(page_image_interval=-1)
        with pytest.raises(ValueError):
            config.validate()

    def test_with_extensions_copies(self):
        base = DatabaseConfig()
        derived = base.with_extensions(page_image_interval=8)
        assert base.extensions.page_image_interval == 0
        assert derived.extensions.page_image_interval == 8
        assert derived.page_size == base.page_size

    def test_effective_master_switch(self):
        ext = LoggingExtensions(enabled=False, page_image_interval=8)
        eff = ext.effective()
        assert eff.page_image_interval == 0
        assert not eff.preformat_on_realloc
        assert not eff.clr_undo_info

    def test_cost_model_free(self):
        free = CostModel.free()
        assert free.log_record_cpu_s == 0
        assert free.dml_cpu_s == 0

    def test_env_charge_cpu(self):
        env = SimEnv(cost=CostModel())
        env.charge_cpu(0.5)
        assert env.clock.now() == pytest.approx(0.5)
        env.charge_cpu(0)  # no-op
        assert env.clock.now() == pytest.approx(0.5)


class TestEngineLifecycle:
    def test_duplicate_database_rejected(self, engine):
        engine.create_database("d")
        with pytest.raises(CatalogError):
            engine.create_database("d")

    def test_database_lookup(self, engine):
        db = engine.create_database("d")
        assert engine.database("d") is db
        with pytest.raises(CatalogError):
            engine.database("ghost")

    def test_drop_database(self, engine):
        engine.create_database("d")
        engine.drop_database("d")
        with pytest.raises(CatalogError):
            engine.database("d")

    def test_snapshot_name_collides_with_database(self, engine, items_db):
        with pytest.raises(SnapshotError):
            engine.create_asof_snapshot("itemsdb", "itemsdb", 0.0)

    def test_database_name_collides_with_snapshot(self, engine, items_db):
        engine.create_asof_snapshot("itemsdb", "snap", items_db.env.clock.now())
        with pytest.raises(CatalogError):
            engine.create_database("snap")

    def test_resolve_as_of_formats(self, engine):
        assert engine.resolve_as_of(12.5) == 12.5
        assert engine.resolve_as_of(7) == 7.0
        moment = datetime(2012, 3, 22, 12, 30, 0, tzinfo=timezone.utc)
        assert engine.resolve_as_of(moment) == SimClock.from_datetime(moment)
        assert engine.resolve_as_of("2012-03-22 12:30:00") == pytest.approx(
            SimClock.from_datetime(moment)
        )
        with pytest.raises(ValueError):
            engine.resolve_as_of([1, 2])

    def test_shared_env_across_databases(self, engine):
        a = engine.create_database("a")
        b = engine.create_database("b")
        assert a.env is b.env
        assert a.env is engine.env


class TestCheckpointer:
    def test_cadence(self):
        env = SimEnv(cost=CostModel())
        engine = Engine(env)
        db = engine.create_database("c", DatabaseConfig(checkpoint_interval_s=10))
        db.create_table(ITEMS_SCHEMA)
        checkpointer = Checkpointer(db)
        taken = 0
        for step in range(50):
            env.clock.advance(1.0)
            with db.transaction() as txn:
                db.insert(txn, "items", (step, "x", step))
            if checkpointer.tick():
                taken += 1
        assert 3 <= taken <= 6

    def test_tick_below_interval_is_noop(self, items_db):
        checkpointer = Checkpointer(items_db, interval_s=1000)
        before = items_db.env.stats.checkpoints_taken
        assert not checkpointer.tick()
        assert items_db.env.stats.checkpoints_taken == before

    def test_retention_enforced_with_checkpoint(self):
        env = SimEnv(cost=CostModel())
        engine = Engine(env)
        db = engine.create_database(
            "r", DatabaseConfig(checkpoint_interval_s=5, undo_interval_s=20)
        )
        db.create_table(ITEMS_SCHEMA)
        checkpointer = Checkpointer(db)
        for step in range(60):
            env.clock.advance(1.0)
            with db.transaction() as txn:
                db.insert(txn, "items", (step, "y" * 40, step))
            checkpointer.tick()
        # Old log was truncated (retention), recent log retained.
        assert db.log.start_lsn > 8


class TestBootRecord:
    def test_pack_unpack_roundtrip(self):
        rec = BootRecord(
            last_checkpoint_lsn=12345,
            undo_interval_s=7200.0,
            created_wall=99.5,
        )
        assert BootRecord.unpack(rec.pack()) == rec

    def test_with_changes(self):
        rec = BootRecord()
        changed = rec.with_changes(last_checkpoint_lsn=77)
        assert changed.last_checkpoint_lsn == 77
        assert changed.undo_interval_s == rec.undo_interval_s

    def test_short_payload_rejected(self):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            BootRecord.unpack(b"xx")

    def test_boot_survives_crash(self, items_db):
        items_db.set_undo_interval(1234)
        items_db.checkpoint()
        items_db.crash()
        items_db.recover()
        assert items_db.undo_interval_s == 1234


class TestDeviceProfilesInEngine:
    def test_io_advances_shared_clock(self):
        env = SimEnv(data_profile=SLC_SSD, log_profile=SLC_SSD, cost=CostModel())
        engine = Engine(env)
        db = engine.create_database("timed")
        db.create_table(ITEMS_SCHEMA)
        t0 = env.clock.now()
        fill_items(db, 50)
        assert env.clock.now() > t0

    def test_stats_shared_across_engine(self, engine, items_db):
        fill_items(items_db, 5)
        other = engine.create_database("other")
        other.create_table(ITEMS_SCHEMA)
        fill_items(other, 5)
        # One stats sheet: commits from both databases accumulate.
        assert engine.env.stats.transactions_committed >= 2
