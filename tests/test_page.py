"""Slotted page unit and property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageFullError, StorageError
from repro.storage.page import (
    HEADER_SIZE,
    NULL_PAGE,
    Page,
    PageType,
    alloc_bitmap_geometry,
    ever_bit_offset,
)

PAGE_SIZE = 1024


def fresh_page(page_id: int = 7, page_type: PageType = PageType.BTREE) -> Page:
    page = Page(bytearray(PAGE_SIZE))
    page.format(page_id, page_type, object_id=42, index_id=1, level=0)
    return page


class TestFormat:
    def test_unformatted_bytes_are_not_a_page(self):
        assert not Page(bytearray(PAGE_SIZE)).is_formatted()

    def test_format_sets_identity(self):
        page = fresh_page()
        assert page.is_formatted()
        assert page.page_id == 7
        assert page.page_type is PageType.BTREE
        assert page.object_id == 42
        assert page.index_id == 1
        assert page.level == 0
        assert page.slot_count == 0
        assert page.page_lsn == 0
        assert page.prev_page == NULL_PAGE
        assert page.next_page == NULL_PAGE

    def test_format_erases_prior_content(self):
        page = fresh_page()
        page.insert_record(0, b"hello")
        page.format(8, PageType.HEAP)
        assert page.slot_count == 0
        assert page.page_id == 8

    def test_deformat_zeroes(self):
        page = fresh_page()
        page.insert_record(0, b"data")
        page.deformat()
        assert not page.is_formatted()
        assert bytes(page.data) == bytes(PAGE_SIZE)

    def test_restore_replaces_content(self):
        page = fresh_page()
        page.insert_record(0, b"one")
        image = page.clone_bytes()
        page.insert_record(1, b"two")
        page.restore(image)
        assert page.slot_count == 1
        assert page.record(0) == b"one"

    def test_restore_size_mismatch(self):
        page = fresh_page()
        with pytest.raises(StorageError):
            page.restore(b"short")

    def test_header_fields_settable(self):
        page = fresh_page()
        page.page_lsn = 12345
        page.last_image_lsn = 99
        page.prev_page = 3
        page.next_page = 4
        page.mods_since_image = 17
        assert page.page_lsn == 12345
        assert page.last_image_lsn == 99
        assert page.prev_page == 3
        assert page.next_page == 4
        assert page.mods_since_image == 17


class TestRecordOps:
    def test_insert_and_read(self):
        page = fresh_page()
        page.insert_record(0, b"alpha")
        assert page.slot_count == 1
        assert page.record(0) == b"alpha"

    def test_insert_shifts_slots(self):
        page = fresh_page()
        page.insert_record(0, b"b")
        page.insert_record(0, b"a")
        page.insert_record(2, b"c")
        assert list(page.records()) == [b"a", b"b", b"c"]

    def test_insert_middle(self):
        page = fresh_page()
        page.insert_record(0, b"a")
        page.insert_record(1, b"c")
        page.insert_record(1, b"b")
        assert list(page.records()) == [b"a", b"b", b"c"]

    def test_insert_out_of_range(self):
        page = fresh_page()
        with pytest.raises(StorageError):
            page.insert_record(1, b"x")

    def test_delete_returns_payload(self):
        page = fresh_page()
        page.insert_record(0, b"a")
        page.insert_record(1, b"b")
        assert page.delete_record(0) == b"a"
        assert list(page.records()) == [b"b"]

    def test_delete_last(self):
        page = fresh_page()
        page.insert_record(0, b"a")
        page.delete_record(0)
        assert page.slot_count == 0

    def test_update_same_size_in_place(self):
        page = fresh_page()
        page.insert_record(0, b"aaaa")
        old = page.update_record(0, b"bbbb")
        assert old == b"aaaa"
        assert page.record(0) == b"bbbb"

    def test_update_shrink(self):
        page = fresh_page()
        page.insert_record(0, b"aaaaaaaa")
        page.update_record(0, b"b")
        assert page.record(0) == b"b"

    def test_update_grow_relocates(self):
        page = fresh_page()
        page.insert_record(0, b"a")
        page.insert_record(1, b"z")
        page.update_record(0, b"a" * 100)
        assert page.record(0) == b"a" * 100
        assert page.record(1) == b"z"

    def test_insert_full_page_raises(self):
        page = fresh_page()
        payload = b"x" * page.max_payload()
        page.insert_record(0, payload)
        with pytest.raises(PageFullError):
            page.insert_record(1, b"y")

    def test_compaction_reclaims_garbage(self):
        page = fresh_page()
        chunk = b"c" * 100
        count = 0
        while page.has_room_for(len(chunk)):
            page.insert_record(page.slot_count, chunk)
            count += 1
        # Free half, then a big insert must succeed via compaction.
        for slot in range(count - 1, -1, -2):
            page.delete_record(slot)
        big = b"B" * 150
        assert page.has_room_for(len(big))
        page.insert_record(0, big)
        assert page.record(0) == big

    def test_total_free_counts_garbage(self):
        page = fresh_page()
        page.insert_record(0, b"d" * 200)
        free_before = page.total_free()
        page.delete_record(0)
        assert page.total_free() == free_before + 200 + 2 + 2

    def test_max_payload_fits_exactly(self):
        page = fresh_page()
        page.insert_record(0, b"m" * page.max_payload())
        assert page.contiguous_free() == 0


class TestBodyBits:
    def test_set_get_roundtrip(self):
        page = fresh_page(page_type=PageType.ALLOC_MAP)
        page.set_body_bit(0, True)
        page.set_body_bit(77, True)
        assert page.get_body_bit(0)
        assert page.get_body_bit(77)
        assert not page.get_body_bit(1)
        page.set_body_bit(77, False)
        assert not page.get_body_bit(77)

    def test_bit_out_of_range(self):
        page = fresh_page()
        with pytest.raises(StorageError):
            page.get_body_bit(PAGE_SIZE * 8)

    def test_geometry(self):
        per_map = alloc_bitmap_geometry(PAGE_SIZE)
        assert per_map == (PAGE_SIZE - HEADER_SIZE) * 8 // 2
        assert ever_bit_offset(PAGE_SIZE) == per_map


# ---------------------------------------------------------------------------
# Property tests: the page behaves like a list of payloads.
# ---------------------------------------------------------------------------

_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "update"]),
        st.integers(min_value=0, max_value=30),
        st.binary(min_size=0, max_size=40),
    ),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(_ops)
def test_page_matches_list_model(ops):
    """Random insert/delete/update sequences match a plain list model."""
    page = fresh_page()
    model: list[bytes] = []
    for op, pos, payload in ops:
        if op == "insert":
            slot = min(pos, len(model))
            if page.has_room_for(len(payload)):
                page.insert_record(slot, payload)
                model.insert(slot, payload)
        elif op == "delete" and model:
            slot = pos % len(model)
            assert page.delete_record(slot) == model.pop(slot)
        elif op == "update" and model:
            slot = pos % len(model)
            growth = len(payload) - len(model[slot])
            if growth <= 0 or page.total_free() >= growth:
                page.update_record(slot, payload)
                model[slot] = payload
    assert list(page.records()) == model
    assert page.slot_count == len(model)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=30), min_size=1, max_size=20))
def test_clone_restore_roundtrip(payloads):
    page = fresh_page()
    for index, payload in enumerate(payloads):
        if page.has_room_for(len(payload)):
            page.insert_record(index if index <= page.slot_count else page.slot_count, payload)
    image = page.clone_bytes()
    survived = list(page.records())
    page.insert_record(0, b"junk") if page.has_room_for(4) else None
    page.restore(image)
    assert list(page.records()) == survived
