"""ARIES crash recovery tests: crash points, losers, idempotence."""

from __future__ import annotations

from repro.engine.recovery import analyze_log
from tests.conftest import ITEMS_SCHEMA, fill_items


def crash_and_recover(db):
    db.crash()
    db.recover()


class TestCleanRestart:
    def test_recover_committed_state(self, items_db):
        fill_items(items_db, 50)
        crash_and_recover(items_db)
        assert sum(1 for _ in items_db.scan("items")) == 50
        assert items_db.get("items", (25,)) == (25, "item-25", 250)

    def test_recover_without_checkpoint_since_writes(self, items_db):
        fill_items(items_db, 30)
        # No explicit checkpoint: redo must replay from the bootstrap one.
        crash_and_recover(items_db)
        assert sum(1 for _ in items_db.scan("items")) == 30

    def test_recover_after_checkpoint_is_cheap(self, items_db):
        fill_items(items_db, 30)
        items_db.checkpoint()
        analysis = analyze_log(items_db.log, items_db.last_checkpoint_lsn)
        assert analysis.losers == {}
        crash_and_recover(items_db)
        assert sum(1 for _ in items_db.scan("items")) == 30

    def test_double_recovery_idempotent(self, items_db):
        fill_items(items_db, 20)
        crash_and_recover(items_db)
        crash_and_recover(items_db)
        assert sum(1 for _ in items_db.scan("items")) == 20


class TestLosers:
    def test_unflushed_uncommitted_vanishes(self, items_db):
        fill_items(items_db, 10)
        txn = items_db.begin()
        items_db.insert(txn, "items", (99, "ghost", 0))
        crash_and_recover(items_db)
        assert items_db.get("items", (99,)) is None
        assert sum(1 for _ in items_db.scan("items")) == 10

    def test_flushed_uncommitted_rolled_back(self, items_db):
        fill_items(items_db, 10)
        txn = items_db.begin()
        items_db.insert(txn, "items", (99, "ghost", 0))
        items_db.update(txn, "items", (3,), {"qty": -1})
        items_db.delete(txn, "items", (5,))
        items_db.log.flush()  # durable but uncommitted
        crash_and_recover(items_db)
        assert items_db.get("items", (99,)) is None
        assert items_db.get("items", (3,))[2] == 30
        assert items_db.get("items", (5,)) is not None

    def test_loser_spanning_checkpoint(self, items_db):
        fill_items(items_db, 10)
        txn = items_db.begin()
        items_db.insert(txn, "items", (99, "ghost", 0))
        items_db.checkpoint()  # loser active at checkpoint
        items_db.update(txn, "items", (4,), {"qty": -4})
        items_db.log.flush()
        crash_and_recover(items_db)
        assert items_db.get("items", (99,)) is None
        assert items_db.get("items", (4,))[2] == 40

    def test_committed_after_checkpoint_survives(self, items_db):
        fill_items(items_db, 10)
        items_db.checkpoint()
        with items_db.transaction() as txn:
            items_db.insert(txn, "items", (50, "late", 5))
        crash_and_recover(items_db)
        assert items_db.get("items", (50,)) == (50, "late", 5)

    def test_winner_and_loser_interleaved(self, items_db):
        fill_items(items_db, 10)
        loser = items_db.begin()
        items_db.update(loser, "items", (1,), {"qty": -1})
        winner = items_db.begin()
        items_db.update(winner, "items", (2,), {"qty": 222})
        items_db.commit(winner)  # forces log: loser records durable too
        crash_and_recover(items_db)
        assert items_db.get("items", (1,))[2] == 10
        assert items_db.get("items", (2,))[2] == 222

    def test_crash_mid_rollback_resumes(self, items_db):
        """CLRs written before the crash are not re-compensated."""
        fill_items(items_db, 10)
        txn = items_db.begin()
        for i in range(5):
            items_db.update(txn, "items", (i,), {"qty": 1000 + i})
        # Roll back, then crash with the abort record unflushed but some
        # CLRs durable: simulate by flushing mid-chain.
        items_db.log.flush()
        items_db.rollback(txn)
        # rollback appended CLRs + abort; drop the tail after the 2nd CLR.
        items_db.crash()
        items_db.recover()
        for i in range(5):
            assert items_db.get("items", (i,))[2] == i * 10

    def test_new_txns_after_recovery_get_fresh_ids(self, items_db):
        txn = items_db.begin()
        items_db.insert(txn, "items", (1, "x", 1))
        old_id = txn.txn_id
        items_db.log.flush()
        crash_and_recover(items_db)
        with items_db.transaction() as txn2:
            assert txn2.txn_id > old_id
            items_db.insert(txn2, "items", (2, "y", 2))


class TestStructuralRecovery:
    def test_crash_preserves_splits(self, small_db):
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 600)
        crash_and_recover(db)
        rows = [r[0] for r in db.scan("items")]
        assert rows == list(range(600))

    def test_crash_after_drop_table(self, small_db):
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 100)
        db.drop_table("items")
        crash_and_recover(db)
        assert db.catalog.get_by_name("items") is None

    def test_crash_with_uncommitted_create_table(self, db):
        txn = db.begin()
        db.catalog.create_table(txn, ITEMS_SCHEMA)
        db.log.flush()
        crash_and_recover(db)
        assert db.catalog.get_by_name("items") is None
        # Namespace is clean: table can be created again.
        db.create_table(ITEMS_SCHEMA)

    def test_crash_with_uncommitted_drop_table(self, items_db):
        fill_items(items_db, 20)
        txn = items_db.begin()
        items_db.catalog.drop_table(txn, "items")
        items_db.log.flush()
        crash_and_recover(items_db)
        assert items_db.catalog.get_by_name("items") is not None
        assert sum(1 for _ in items_db.scan("items")) == 20

    def test_heap_recovery(self, engine, small_config):
        from tests.test_heap import HISTORY_SCHEMA

        db = engine.create_database("heaprec", small_config)
        db.create_table(HISTORY_SCHEMA, heap=True)
        with db.transaction() as txn:
            for i in range(50):
                db.insert(txn, "history", (i, "z" * 80))
        crash_and_recover(db)
        assert db.table("history").count() == 50

    def test_work_continues_after_recovery(self, small_db):
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 200)
        crash_and_recover(db)
        fill_items(db, 200, start=200)
        with db.transaction() as txn:
            db.delete(txn, "items", (0,))
            db.update(txn, "items", (399,), {"qty": 1})
        assert db.table("items").count() == 399


class TestAnalysis:
    def test_analysis_tracks_dirty_pages(self, items_db):
        items_db.checkpoint()
        with items_db.transaction() as txn:
            items_db.insert(txn, "items", (1, "a", 1))
        analysis = analyze_log(items_db.log, items_db.last_checkpoint_lsn)
        assert analysis.dirty_pages  # at least the leaf touched
        assert analysis.losers == {}

    def test_analysis_collects_loser_locks(self, items_db):
        items_db.checkpoint()
        txn = items_db.begin()
        items_db.insert(txn, "items", (1, "a", 1))
        analysis = analyze_log(items_db.log, items_db.last_checkpoint_lsn)
        assert txn.txn_id in analysis.losers
        assert analysis.loser_locks[txn.txn_id]
        items_db.rollback(txn)

    def test_recovery_checkpoint_taken(self, items_db):
        fill_items(items_db, 5)
        before = items_db.env.stats.checkpoints_taken
        crash_and_recover(items_db)
        assert items_db.env.stats.checkpoints_taken == before + 1
