"""Tests for the user-facing recovery workflows and selective txn undo."""

from __future__ import annotations

import pytest

from repro.core.recovery_tools import (
    diff_table,
    find_when_table_existed,
    recover_dropped_table,
    restore_rows,
)
from repro.core.txn_undo import (
    TransactionUndoConflict,
    UnsupportedTransactionUndo,
    undo_transaction,
)
from repro.errors import CatalogError, TransactionError
from tests.conftest import fill_items


class TestProbeSearch:
    def test_finds_existing_table(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        db.env.clock.advance(120)
        alive = db.env.clock.now()
        db.env.clock.advance(120)
        db.drop_table("items")
        db.env.clock.advance(600)
        result = find_when_table_existed(
            engine, "itemsdb", "items", latest=alive + 60, step_s=30
        )
        assert result.found
        assert result.probes >= 1
        assert engine.snapshots == {}  # probes cleaned up

    def test_gives_up_outside_retention(self, engine, items_db):
        db = items_db
        db.set_undo_interval(60)
        fill_items(db, 3)
        db.env.clock.advance(600)
        db.checkpoint()
        result = find_when_table_existed(
            engine, "itemsdb", "never_existed", latest=db.env.clock.now(), step_s=120
        )
        assert not result.found

    def test_keep_snapshot_option(self, engine, items_db):
        fill_items(items_db, 3)
        items_db.env.clock.advance(60)
        result = find_when_table_existed(
            engine,
            "itemsdb",
            "items",
            latest=items_db.env.clock.now() - 1,
            keep_snapshot=True,
        )
        assert result.found and result.snapshot_name
        assert engine.snapshot(result.snapshot_name).table_exists("items")
        engine.drop_snapshot(result.snapshot_name)


class TestRecoverDroppedTable:
    def test_full_recovery(self, engine, items_db):
        db = items_db
        fill_items(db, 25)
        good = db.env.clock.now()
        db.env.clock.advance(60)
        db.drop_table("items")
        copied = recover_dropped_table(engine, "itemsdb", "items", good)
        assert copied == 25
        assert sum(1 for _ in db.scan("items")) == 25
        assert engine.snapshots == {}

    def test_rejects_existing_table(self, engine, items_db):
        fill_items(items_db, 3)
        with pytest.raises(CatalogError):
            recover_dropped_table(
                engine, "itemsdb", "items", items_db.env.clock.now()
            )


class TestDiffAndRestore:
    def test_diff_classifies(self, engine, items_db):
        db = items_db
        fill_items(db, 6)
        good = db.env.clock.now()
        db.env.clock.advance(30)
        with db.transaction() as txn:
            db.delete(txn, "items", (1,))           # lost
            db.update(txn, "items", (2,), {"qty": 999})  # changed
            db.insert(txn, "items", (100, "new", 0))     # legit new work
        snap = engine.create_asof_snapshot("itemsdb", "past", good)
        diff = diff_table(snap, db, "items")
        assert [r[0] for r in diff.only_in_past] == [1]
        assert [r[0] for r in diff.only_in_present] == [100]
        assert [entry[0] for entry in diff.changed] == [(2,)]

    def test_restore_rows_selective(self, engine, items_db):
        db = items_db
        fill_items(db, 6)
        good = db.env.clock.now()
        db.env.clock.advance(30)
        with db.transaction() as txn:
            db.delete(txn, "items", (1,))
            db.update(txn, "items", (2,), {"qty": 999})
            db.insert(txn, "items", (100, "new", 0))
        snap = engine.create_asof_snapshot("itemsdb", "past", good)
        diff = diff_table(snap, db, "items")
        written = restore_rows(db, "items", diff)
        assert written == 1
        assert db.get("items", (1,)) is not None       # restored
        assert db.get("items", (2,))[2] == 999         # kept (changed)
        assert db.get("items", (100,)) is not None     # kept (new)

    def test_restore_changed_too(self, engine, items_db):
        db = items_db
        fill_items(db, 3)
        good = db.env.clock.now()
        db.env.clock.advance(30)
        with db.transaction() as txn:
            db.update(txn, "items", (2,), {"qty": 999})
        snap = engine.create_asof_snapshot("itemsdb", "past", good)
        diff = diff_table(snap, db, "items")
        restore_rows(db, "items", diff, restore_changed=True)
        assert db.get("items", (2,))[2] == 20

    def test_empty_diff(self, engine, items_db):
        fill_items(items_db, 3)
        snap = engine.create_asof_snapshot(
            "itemsdb", "now", items_db.env.clock.now()
        )
        assert diff_table(snap, items_db, "items").is_empty


class TestTransactionUndo:
    def _committed_txn(self, db):
        txn = db.begin()
        db.insert(txn, "items", (50, "added", 5))
        db.update(txn, "items", (1,), {"qty": 111})
        db.delete(txn, "items", (2,))
        db.commit(txn)
        return txn.txn_id

    def test_clean_undo(self, items_db):
        db = items_db
        fill_items(db, 5)
        txn_id = self._committed_txn(db)
        report = undo_transaction(db, txn_id)
        assert report.undone == 3
        assert report.conflicts == []
        assert db.get("items", (50,)) is None
        assert db.get("items", (1,))[2] == 10
        assert db.get("items", (2,)) == (2, "item-2", 20)

    def test_compensation_is_itself_a_txn(self, engine, items_db):
        """The compensating transaction is logged: as-of snapshots can see
        before/after, and it can itself be undone."""
        db = items_db
        fill_items(db, 5)
        txn_id = self._committed_txn(db)
        db.env.clock.advance(10)
        mid = db.env.clock.now()
        db.env.clock.advance(10)
        report = undo_transaction(db, txn_id)
        snap = engine.create_asof_snapshot("itemsdb", "mid", mid)
        assert snap.get("items", (1,))[2] == 111  # before the undo
        # Undo the undo: the original changes come back.
        second = undo_transaction(db, report.compensating_txn_id)
        assert second.undone == 3
        assert db.get("items", (1,))[2] == 111

    def test_conflict_abort(self, items_db):
        db = items_db
        fill_items(db, 5)
        txn_id = self._committed_txn(db)
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 777})  # later write
        with pytest.raises(TransactionUndoConflict):
            undo_transaction(db, txn_id)
        # Abort rolled the partial compensation back.
        assert db.get("items", (50,)) is not None
        assert db.get("items", (1,))[2] == 777

    def test_conflict_skip(self, items_db):
        db = items_db
        fill_items(db, 5)
        txn_id = self._committed_txn(db)
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 777})
        report = undo_transaction(db, txn_id, conflict_policy="skip")
        assert len(report.conflicts) == 1
        assert db.get("items", (1,))[2] == 777      # conflicting row kept
        assert db.get("items", (50,)) is None       # clean ops undone
        assert db.get("items", (2,)) is not None

    def test_conflict_force(self, items_db):
        db = items_db
        fill_items(db, 5)
        txn_id = self._committed_txn(db)
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 777})
        report = undo_transaction(db, txn_id, conflict_policy="force")
        assert report.undone == 3
        assert db.get("items", (1,))[2] == 10       # forced back

    def test_rejects_uncommitted(self, items_db):
        db = items_db
        fill_items(db, 3)
        txn = db.begin()
        db.insert(txn, "items", (60, "open", 0))
        with pytest.raises(TransactionError):
            undo_transaction(db, txn.txn_id)
        db.rollback(txn)

    def test_rejects_unknown(self, items_db):
        with pytest.raises(TransactionError):
            undo_transaction(items_db, 999999)

    def test_rejects_rolled_back(self, items_db):
        db = items_db
        fill_items(db, 3)
        txn = db.begin()
        db.insert(txn, "items", (61, "x", 0))
        db.rollback(txn)
        with pytest.raises(TransactionError):
            undo_transaction(db, txn.txn_id)

    def test_rejects_ddl(self, items_db, wide_schema):
        db = items_db
        txn = db.begin()
        db.catalog.create_table(txn, wide_schema)
        db.commit(txn)
        with pytest.raises(UnsupportedTransactionUndo):
            undo_transaction(db, txn.txn_id)

    def test_heap_insert_undo(self, engine, small_config):
        from tests.test_heap import HISTORY_SCHEMA

        db = engine.create_database("heapundo", small_config)
        db.create_table(HISTORY_SCHEMA, heap=True)
        txn = db.begin()
        db.insert(txn, "history", (1, "keep"))
        db.commit(txn)
        victim = db.begin()
        db.insert(victim, "history", (2, "undo-me"))
        db.commit(victim)
        report = undo_transaction(db, victim.txn_id)
        assert report.undone == 1
        assert list(db.scan("history")) == [(1, "keep")]

    def test_undo_across_splits(self, small_db):
        from tests.conftest import ITEMS_SCHEMA

        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 50)
        big = db.begin()
        for i in range(50, 350):
            db.insert(big, "items", (i, f"bulk-{i}", i))
        db.commit(big)
        fill_items(db, 50, start=400)  # later unrelated work
        report = undo_transaction(db, big.txn_id)
        assert report.undone == 300
        keys = [r[0] for r in db.scan("items")]
        assert keys == list(range(50)) + list(range(400, 450))
