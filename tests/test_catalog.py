"""Catalog tests: self-describing system tables, DDL, schema round-trips."""

from __future__ import annotations

import pytest

from repro.catalog.catalog import (
    FIRST_USER_OBJECT_ID,
    SYS_COLUMNS_ID,
    SYS_OBJECTS_ID,
)
from repro.errors import CatalogError
from tests.conftest import ITEMS_SCHEMA, WIDE_SCHEMA


class TestBootstrapState:
    def test_system_tables_self_described(self, db):
        objs = {o.name: o for o in db.catalog.list_objects(include_system=True)}
        assert objs["sys_objects"].object_id == SYS_OBJECTS_ID
        assert objs["sys_columns"].object_id == SYS_COLUMNS_ID

    def test_user_listing_hides_system(self, db):
        assert db.catalog.list_objects() == []

    def test_next_object_id_starts_at_floor(self, db):
        assert db.catalog.next_object_id() == FIRST_USER_OBJECT_ID


class TestCreateTable:
    def test_create_and_lookup(self, db):
        db.create_table(ITEMS_SCHEMA)
        info = db.catalog.get_by_name("items")
        assert info is not None
        assert info.kind == "table"
        assert db.catalog.get_by_id(info.object_id) == info

    def test_schema_roundtrip(self, db):
        db.create_table(WIDE_SCHEMA)
        info = db.catalog.require("wide")
        loaded = db.catalog.load_schema(info)
        assert loaded.column_names == WIDE_SCHEMA.column_names
        assert loaded.key == WIDE_SCHEMA.key
        for orig, got in zip(WIDE_SCHEMA.columns, loaded.columns, strict=True):
            assert (orig.name, orig.ctype, orig.nullable, orig.max_len) == (
                got.name,
                got.ctype,
                got.nullable,
                got.max_len,
            )

    def test_duplicate_name_rejected(self, db):
        db.create_table(ITEMS_SCHEMA)
        with pytest.raises(CatalogError):
            db.create_table(ITEMS_SCHEMA)

    def test_object_ids_increase(self, db):
        db.create_table(ITEMS_SCHEMA)
        db.create_table(WIDE_SCHEMA)
        a = db.catalog.require("items").object_id
        b = db.catalog.require("wide").object_id
        assert b == a + 1

    def test_create_heap_kind(self, db):
        db.create_table(ITEMS_SCHEMA, heap=True)
        assert db.catalog.require("items").is_heap

    def test_create_rolls_back(self, db):
        txn = db.begin()
        db.catalog.create_table(txn, ITEMS_SCHEMA)
        db.rollback(txn)
        assert db.catalog.get_by_name("items") is None
        # The root page allocation was undone too; a fresh create reuses it.
        db.create_table(ITEMS_SCHEMA)
        assert db.catalog.get_by_name("items") is not None


class TestDropTable:
    def test_drop_removes_metadata(self, db):
        db.create_table(ITEMS_SCHEMA)
        db.drop_table("items")
        assert db.catalog.get_by_name("items") is None
        lo = (FIRST_USER_OBJECT_ID, -(2**62))
        hi = (FIRST_USER_OBJECT_ID, 2**62)
        assert list(db.catalog.sys_columns.scan(lo, hi)) == []

    def test_drop_missing_raises(self, db):
        with pytest.raises(CatalogError):
            db.drop_table("ghost")

    def test_drop_system_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.drop_table("sys_objects")

    def test_drop_frees_pages(self, small_db):
        from tests.conftest import fill_items

        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 400)
        tree_pages = set(db.table("items").accessor.page_ids())
        assert len(tree_pages) > 3
        db.drop_table("items")
        for pid in tree_pages:
            assert not db.alloc.is_allocated(pid)
            assert db.alloc.was_ever_allocated(pid)

    def test_drop_rolls_back(self, small_db):
        from tests.conftest import fill_items

        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 100)
        txn = db.begin()
        db.catalog.drop_table(txn, "items")
        db.rollback(txn)
        db._table_cache.clear()
        assert db.catalog.get_by_name("items") is not None
        assert sum(1 for _ in db.scan("items")) == 100

    def test_recreate_after_drop(self, db):
        db.create_table(ITEMS_SCHEMA)
        db.drop_table("items")
        db.create_table(ITEMS_SCHEMA)
        with db.transaction() as txn:
            db.insert(txn, "items", (1, "new", 1))
        assert db.get("items", (1,)) == (1, "new", 1)

    def test_tables_listing(self, db):
        db.create_table(ITEMS_SCHEMA)
        db.create_table(WIDE_SCHEMA)
        assert sorted(db.tables()) == ["items", "wide"]
        db.drop_table("items")
        assert db.tables() == ["wide"]
