"""Unit tests for the logged page-modification path (wal/apply.py)."""

from __future__ import annotations

from repro import DatabaseConfig, Engine
from repro.storage.page import Page, PageType
from repro.wal.apply import UnloggedModifier
from repro.wal.records import (
    InsertRowRecord,
    PageImageRecord,
    PreformatPageRecord,
)
from tests.conftest import ITEMS_SCHEMA, fill_items


def image_db(interval: int):
    engine = Engine(
        config=DatabaseConfig().with_extensions(page_image_interval=interval)
    )
    db = engine.create_database("img")
    db.create_table(ITEMS_SCHEMA)
    return db


class TestPageChains:
    def test_prev_page_lsn_links(self, items_db):
        db = items_db
        fill_items(db, 3)
        leaf = db.table("items").accessor.page_ids()[0]
        with db.fetch_page(leaf) as guard:
            lsn = guard.page.page_lsn
        seen = []
        while lsn:
            rec = db.log.read(lsn)
            seen.append(rec)
            assert rec.page_id == leaf
            lsn = rec.prev_page_lsn
        # format + 3 inserts, newest first, strictly decreasing LSNs.
        assert len(seen) == 4
        assert [r.lsn for r in seen] == sorted((r.lsn for r in seen), reverse=True)

    def test_txn_chain_links(self, items_db):
        db = items_db
        txn = db.begin()
        db.insert(txn, "items", (1, "a", 1))
        db.insert(txn, "items", (2, "b", 2))
        db.commit(txn)
        rec = db.log.read(txn.last_lsn)  # commit record
        chain = []
        lsn = txn.last_lsn
        while lsn:
            rec = db.log.read(lsn)
            chain.append(type(rec).__name__)
            if chain[-1] == "BeginRecord":
                break
            lsn = rec.prev_txn_lsn
        assert chain == [
            "CommitRecord",
            "InsertRowRecord",
            "InsertRowRecord",
            "BeginRecord",
        ]


class TestPageImages:
    def test_image_cadence(self):
        db = image_db(4)
        with db.transaction() as txn:
            for i in range(8):
                db.insert(txn, "items", (i, "x", i))
        # 8 modifications at N=4 → at least 2 images for the leaf.
        leaf = db.table("items").accessor.page_ids()[0]
        with db.fetch_page(leaf) as guard:
            assert guard.page.last_image_lsn > 0
            assert guard.page.mods_since_image < 4
        assert db.env.stats.page_image_records >= 2

    def test_image_chain_linked(self):
        db = image_db(2)
        with db.transaction() as txn:
            for i in range(10):
                db.insert(txn, "items", (i, "x", i))
        leaf = db.table("items").accessor.page_ids()[0]
        with db.fetch_page(leaf) as guard:
            image_lsn = guard.page.last_image_lsn
        count = 0
        while image_lsn:
            rec = db.log.read(image_lsn)
            assert isinstance(rec, PageImageRecord)
            count += 1
            image_lsn = rec.prev_image_lsn
        assert count >= 4

    def test_no_images_when_disabled(self, items_db):
        fill_items(items_db, 20)
        assert items_db.env.stats.page_image_records == 0
        leaf = items_db.table("items").accessor.page_ids()[0]
        with items_db.fetch_page(leaf) as guard:
            assert guard.page.last_image_lsn == 0


class TestPreformat:
    def test_first_allocation_no_preformat(self, items_db):
        assert items_db.env.stats.preformat_records == 0

    def test_reallocation_logs_preformat(self, items_db):
        db = items_db
        fill_items(db, 5)
        db.drop_table("items")
        db.create_table(ITEMS_SCHEMA)
        assert db.env.stats.preformat_records >= 1
        # The preformat chains format -> preformat -> old incarnation.
        leaf = db.table("items").accessor.page_ids()[0]
        with db.fetch_page(leaf) as guard:
            lsn = guard.page.page_lsn
        kinds = []
        while lsn:
            rec = db.log.read(lsn)
            kinds.append(type(rec).__name__)
            lsn = rec.prev_page_lsn
        assert "PreformatPageRecord" in kinds
        pre_at = kinds.index("PreformatPageRecord")
        assert kinds[pre_at - 1] == "FormatPageRecord"
        assert len(kinds) > pre_at + 1  # old incarnation reachable

    def test_preformat_disabled_breaks_chain(self):
        engine = Engine(
            config=DatabaseConfig().with_extensions(preformat_on_realloc=False)
        )
        db = engine.create_database("nopre")
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 5)
        db.drop_table("items")
        db.create_table(ITEMS_SCHEMA)
        assert db.env.stats.preformat_records == 0
        leaf = db.table("items").accessor.page_ids()[0]
        with db.fetch_page(leaf) as guard:
            lsn = guard.page.page_lsn
        kinds = []
        while lsn:
            rec = db.log.read(lsn)
            kinds.append(type(rec).__name__)
            lsn = rec.prev_page_lsn
        # Chain ends at the new format; the old incarnation is unreachable.
        assert kinds[-1] == "FormatPageRecord"
        assert "PreformatPageRecord" not in kinds


class TestUnloggedModifier:
    def test_apply_without_logging(self, env):
        from repro.storage.buffer import Frame

        modifier = UnloggedModifier(env)
        page = Page(bytearray(1024))
        page.format(5, PageType.BTREE, object_id=1)
        frame = Frame(page, 5)
        rec = InsertRowRecord(slot=0, row=b"row", page_id=5)
        lsn = modifier.apply(None, frame, rec)
        assert lsn == 0
        assert page.record(0) == b"row"
        assert page.page_lsn == 0  # chain untouched
        assert frame.dirty

    def test_format_without_logging(self, env):
        from repro.storage.buffer import Frame

        modifier = UnloggedModifier(env)
        page = Page(bytearray(1024))
        frame = Frame(page, 9)
        modifier.format_page(None, frame, PageType.HEAP, object_id=3)
        assert page.is_formatted()
        assert page.page_id == 9
        assert page.object_id == 3
