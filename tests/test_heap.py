"""Heap table tests: append, chaining, tombstone rollback."""

from __future__ import annotations

import pytest

from repro.catalog.schema import Column, ColumnType, TableSchema
from repro.errors import CatalogError

HISTORY_SCHEMA = TableSchema(
    "history",
    (
        Column("seq", ColumnType.INT),
        Column("note", ColumnType.STR, max_len=120),
    ),
    key=("seq",),
)


@pytest.fixture
def heap_db(engine, small_config):
    db = engine.create_database("heapdb", small_config)
    db.create_table(HISTORY_SCHEMA, heap=True)
    return db


class TestHeapBasics:
    def test_insert_scan_order(self, heap_db):
        with heap_db.transaction() as txn:
            for i in range(10):
                heap_db.insert(txn, "history", (i, f"evt-{i}"))
        rows = list(heap_db.scan("history"))
        assert [r[0] for r in rows] == list(range(10))

    def test_grows_across_pages(self, heap_db):
        with heap_db.transaction() as txn:
            for i in range(200):
                heap_db.insert(txn, "history", (i, "x" * 100))
        table = heap_db.table("history")
        assert len(table.accessor.page_ids()) > 1
        assert table.count() == 200

    def test_duplicate_keys_allowed(self, heap_db):
        """Heaps are unkeyed: the 'key' columns carry no uniqueness."""
        with heap_db.transaction() as txn:
            heap_db.insert(txn, "history", (1, "a"))
            heap_db.insert(txn, "history", (1, "b"))
        assert heap_db.table("history").count() == 2

    def test_get_unsupported(self, heap_db):
        with pytest.raises(CatalogError):
            heap_db.get("history", (1,))

    def test_update_unsupported(self, heap_db):
        with pytest.raises(CatalogError):
            with heap_db.transaction() as txn:
                heap_db.update(txn, "history", (1,), {"note": "x"})

    def test_delete_unsupported(self, heap_db):
        with pytest.raises(CatalogError):
            with heap_db.transaction() as txn:
                heap_db.delete(txn, "history", (1,))


class TestHeapRollback:
    def test_rollback_tombstones(self, heap_db):
        with heap_db.transaction() as txn:
            heap_db.insert(txn, "history", (1, "keep"))
        txn = heap_db.begin()
        heap_db.insert(txn, "history", (2, "drop-me"))
        heap_db.insert(txn, "history", (3, "drop-me-too"))
        heap_db.rollback(txn)
        rows = list(heap_db.scan("history"))
        assert rows == [(1, "keep")]

    def test_interleaved_rollback_preserves_other_rows(self, heap_db):
        """Tombstoning keeps other transactions' later appends intact."""
        t1 = heap_db.begin()
        heap_db.insert(t1, "history", (1, "loser"))
        t2 = heap_db.begin()
        heap_db.insert(t2, "history", (2, "winner"))
        heap_db.commit(t2)
        heap_db.rollback(t1)
        assert list(heap_db.scan("history")) == [(2, "winner")]

    def test_rollback_after_page_growth(self, heap_db):
        txn = heap_db.begin()
        for i in range(100):
            heap_db.insert(txn, "history", (i, "y" * 100))
        heap_db.rollback(txn)
        assert list(heap_db.scan("history")) == []
        # The grown pages persist (system transactions committed), ready
        # for reuse by the next insert.
        with heap_db.transaction() as txn:
            heap_db.insert(txn, "history", (7, "after"))
        assert list(heap_db.scan("history")) == [(7, "after")]
