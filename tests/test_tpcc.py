"""TPC-C workload tests: loading, transactions, invariants, as-of runs."""

from __future__ import annotations

import random

import pytest

from repro import CostModel, DatabaseConfig, Engine, SimEnv
from repro.sim.device import SLC_SSD
from repro.workload import (
    TpccDriver,
    TpccScale,
    add_filler_table,
    load_tpcc,
    new_order,
    payment,
    stock_level,
)

SCALE = TpccScale(
    warehouses=2,
    districts_per_warehouse=2,
    customers_per_district=10,
    items=50,
)


@pytest.fixture
def tpcc_db(engine):
    db = engine.create_database("tpcc")
    load_tpcc(db, SCALE)
    return db


class TestLoader:
    def test_row_counts(self, tpcc_db):
        db = tpcc_db
        assert db.table("warehouse").count() == 2
        assert db.table("district").count() == 4
        assert db.table("customer").count() == 40
        assert db.table("item").count() == 50
        assert db.table("stock").count() == 100
        assert db.table("orders").count() == 0

    def test_district_next_o_id_starts_at_one(self, tpcc_db):
        for row in tpcc_db.scan("district"):
            assert row[3] == 1

    def test_filler_table_inflates_db(self, engine):
        db = engine.create_database("fat")
        pages_before = db.file_manager.page_count
        add_filler_table(db, pages=30)
        assert db.file_manager.page_count >= pages_before + 30


class TestTransactions:
    def test_new_order_effects(self, tpcc_db):
        db = tpcc_db
        rng = random.Random(3)
        scale = SCALE
        committed = new_order(db, rng, scale, w_id=1)
        assert committed
        orders = list(db.scan("orders"))
        assert len(orders) == 1
        w_id, d_id, o_id = orders[0][0], orders[0][1], orders[0][2]
        assert db.get("district", (w_id, d_id))[3] == o_id + 1
        lines = list(db.scan("order_line"))
        assert len(lines) == orders[0][5]
        assert db.get("new_order", (w_id, d_id, o_id)) is not None

    def test_new_order_abort_leaves_no_trace(self, tpcc_db):
        db = tpcc_db
        scale = TpccScale(
            warehouses=2,
            districts_per_warehouse=2,
            customers_per_district=10,
            items=50,
            abort_rate=1.0,  # always abort
        )
        committed = new_order(db, random.Random(1), scale)
        assert not committed
        assert db.table("orders").count() == 0
        assert db.table("order_line").count() == 0
        for row in db.scan("district"):
            assert row[3] == 1  # d_next_o_id rolled back

    def test_payment_updates_balances(self, tpcc_db):
        db = tpcc_db
        payment(db, random.Random(5), SCALE, seq=1)
        histories = list(db.scan("history"))
        assert len(histories) == 1
        amount = histories[0][4]
        w_id = histories[0][1]
        assert db.get("warehouse", (w_id,))[2] == pytest.approx(amount)

    def test_stock_level_counts(self, tpcc_db):
        db = tpcc_db
        rng = random.Random(7)
        for _ in range(5):
            new_order(db, rng, SCALE, w_id=1)
        count_all = stock_level(db, 1, 1, threshold=10**9)
        count_none = stock_level(db, 1, 1, threshold=-1)
        assert count_none == 0
        assert count_all >= 0

    def test_money_conservation_invariant(self, tpcc_db):
        """Sum of history amounts equals sum of warehouse ytd."""
        db = tpcc_db
        rng = random.Random(11)
        for seq in range(20):
            payment(db, rng, SCALE, seq=seq)
        history_total = sum(h[4] for h in db.scan("history"))
        ytd_total = sum(w[2] for w in db.scan("warehouse"))
        assert history_total == pytest.approx(ytd_total)


class TestDriver:
    def test_mix_run(self, tpcc_db):
        driver = TpccDriver(tpcc_db, SCALE, seed=5)
        result = driver.run_transactions(60)
        assert result.transactions == 60
        assert result.committed + result.rolled_back == 60
        assert set(result.by_type) <= {
            "new_order",
            "payment",
            "order_status",
            "delivery",
            "stock_level",
        }

    def test_deterministic_given_seed(self, engine):
        outcomes = []
        for name in ("a", "b"):
            db = engine.create_database(name)
            load_tpcc(db, SCALE)
            driver = TpccDriver(db, SCALE, seed=99)
            result = driver.run_transactions(40)
            outcomes.append(
                (result.committed, tuple(sorted(result.by_type.items())))
            )
        assert outcomes[0] == outcomes[1]

    def test_run_for_advances_simulated_time(self):
        env = SimEnv(
            data_profile=SLC_SSD,
            log_profile=SLC_SSD,
            cost=CostModel(),
        )
        engine = Engine(env)
        db = engine.create_database("timed", DatabaseConfig())
        load_tpcc(db, SCALE)
        driver = TpccDriver(db, SCALE, seed=2)
        result = driver.run_for(sim_seconds=2.0)
        assert result.sim_seconds >= 2.0
        assert result.tpm > 0

    def test_checkpoints_fire_on_cadence(self):
        env = SimEnv(cost=CostModel())
        engine = Engine(env)
        db = engine.create_database("ckpt", DatabaseConfig(checkpoint_interval_s=0.5))
        load_tpcc(db, SCALE)
        driver = TpccDriver(db, SCALE, seed=2, think_time_s=0.05)
        result = driver.run_transactions(50)
        assert result.checkpoints >= 2

    def test_zero_cost_run_for_raises(self, tpcc_db):
        driver = TpccDriver(tpcc_db, SCALE, seed=1)
        with pytest.raises(RuntimeError):
            driver.run_for(1.0)


class TestTpccTimeTravel:
    def test_stock_level_as_of_past(self, engine, tpcc_db):
        """The paper's core experiment in miniature: the same stock-level
        query against the live database and an as-of snapshot."""
        db = tpcc_db
        driver = TpccDriver(db, SCALE, seed=13, think_time_s=0.01)
        driver.run_transactions(30)
        past = db.env.clock.now()
        level_then = stock_level(db, 1, 1, threshold=60)
        db.env.clock.advance(1)
        driver.run_transactions(60)
        snap = engine.create_asof_snapshot("tpcc", "past", past)
        assert stock_level(snap, 1, 1, threshold=60) == level_then

    def test_full_tables_as_of_match(self, engine, tpcc_db):
        db = tpcc_db
        driver = TpccDriver(db, SCALE, seed=21, think_time_s=0.01)
        driver.run_transactions(25)
        expected = {
            name: list(db.scan(name))
            for name in ("district", "stock", "orders", "history")
        }
        past = db.env.clock.now()
        db.env.clock.advance(1)
        driver.run_transactions(50)
        snap = engine.create_asof_snapshot("tpcc", "verify", past)
        for name, rows in expected.items():
            assert list(snap.scan(name)) == rows, name
