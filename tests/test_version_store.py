"""Cross-snapshot page version store: correctness and invalidation.

The store's contract: a lookup hit returns bytes *identical* to what an
uncached ``PreparePageAsOf`` chain walk would produce for that split, and
every event that could break that identity (history rewrite by crash or
promotion, database name reuse, LRU eviction, log truncation past an
unpinned interval) invalidates rather than serves.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DatabaseConfig, Engine
from repro.core.version_store import PageVersionStore
from repro.workload import TpccScale, load_tpcc
from repro.workload.driver import TpccDriver
from tests.conftest import ITEMS_SCHEMA, fill_items


# ---------------------------------------------------------------------------
# Unit behavior
# ---------------------------------------------------------------------------


class TestStoreUnit:
    def test_lookup_interval_semantics(self):
        store = PageVersionStore(1 << 20)
        store.publish("db", 7, 100, 200, b"x" * 64)
        assert store.lookup("db", 7, 100) == b"x" * 64
        assert store.lookup("db", 7, 199) == b"x" * 64
        assert store.lookup("db", 7, 99) is None
        assert store.lookup("db", 7, 200) is None
        assert store.lookup("db", 8, 150) is None
        assert store.lookup("other", 7, 150) is None
        assert store.stats.hits == 2
        assert store.stats.misses == 4

    def test_publish_extends_same_version(self):
        store = PageVersionStore(1 << 20)
        store.publish("db", 7, 100, 150, b"a" * 64)
        store.publish("db", 7, 100, 300, b"a" * 64)
        assert store.versions("db", 7) == [(100, 300)]
        assert store.total_bytes() == 64  # extension stores no new bytes

    def test_empty_or_disabled_publish_is_dropped(self):
        store = PageVersionStore(1 << 20)
        store.publish("db", 7, 100, 100, b"a")
        store.publish("db", 7, 100, 90, b"a")
        assert store.version_count() == 0
        disabled = PageVersionStore(0)
        disabled.publish("db", 7, 100, 200, b"a")
        assert disabled.version_count() == 0
        assert disabled.lookup("db", 7, 150) is None

    def test_lru_eviction_under_budget(self):
        store = PageVersionStore(200)
        store.publish("db", 1, 10, 20, b"a" * 100)
        store.publish("db", 2, 10, 20, b"b" * 100)
        assert store.lookup("db", 1, 15) is not None  # page 1 now MRU
        store.publish("db", 3, 10, 20, b"c" * 100)
        assert store.stats.evictions == 1
        assert store.lookup("db", 2, 15) is None  # LRU victim
        assert store.lookup("db", 1, 15) is not None
        assert store.lookup("db", 3, 15) is not None
        assert store.total_bytes() <= 200

    def test_invalidate_from_drops_and_clamps(self):
        store = PageVersionStore(1 << 20)
        store.publish("db", 1, 100, 200, b"a" * 32)  # clamped to [100, 150)
        store.publish("db", 2, 150, 250, b"b" * 32)  # dropped (v >= 150)
        store.publish("db", 3, 50, 120, b"c" * 32)  # untouched
        dropped = store.invalidate_from("db", 150)
        assert dropped == 1
        assert store.versions("db", 1) == [(100, 150)]
        assert store.versions("db", 2) == []
        assert store.versions("db", 3) == [(50, 120)]

    def test_gc_drops_only_fully_unretained(self):
        store = PageVersionStore(1 << 20)
        store.publish("db", 1, 10, 90, b"a" * 32)  # wholly below floor
        store.publish("db", 2, 80, 120, b"b" * 32)  # straddles: kept
        assert store.gc("db", 100) == 1
        assert store.versions("db", 1) == []
        assert store.versions("db", 2) == [(80, 120)]

    def test_purge_and_budget_accounting(self):
        store = PageVersionStore(1 << 20)
        store.publish("db", 1, 10, 90, b"a" * 32)
        store.publish("db", 2, 10, 90, b"b" * 32)
        store.publish("other", 1, 10, 90, b"c" * 32)
        assert store.purge("db") == 2
        assert store.total_bytes() == 32
        store.clear()
        assert store.total_bytes() == 0
        assert store.version_count() == 0

    def test_set_budget_zero_disables(self):
        store = PageVersionStore(1 << 20)
        store.publish("db", 1, 10, 90, b"a" * 32)
        store.set_budget(0)
        assert not store.enabled
        assert store.version_count() == 0
        assert store.lookup("db", 1, 50) is None


# ---------------------------------------------------------------------------
# Engine integration: hits equal uncached preparation
# ---------------------------------------------------------------------------


def _items_engine():
    engine = Engine(config=DatabaseConfig(page_size=1024, buffer_pool_pages=64))
    db = engine.create_database("vdb")
    db.create_table(ITEMS_SCHEMA)
    return engine, db


def test_store_hit_skips_chain_walk_and_matches(items_schema):
    engine, db = _items_engine()
    clock = engine.env.clock
    fill_items(db, 30)
    clock.advance(10)
    t_past = clock.now()
    clock.advance(10)
    with db.transaction() as txn:
        for i in range(30):
            db.update(txn, "items", (i,), {"qty": i})

    with engine.query_as_of("vdb", t_past) as snap:
        first = list(snap.scan("items"))
    assert engine.version_store.stats.publishes > 0

    # Drop the pooled snapshot: the side file is gone, only the store
    # remains. The re-read must rebuild from store hits, not chain walks.
    engine.snapshot_pool.clear()
    before = engine.env.stats.snapshot()
    with engine.query_as_of("vdb", t_past) as snap:
        second = list(snap.scan("items"))
    spent = engine.env.stats.delta(before)
    assert second == first
    assert spent.version_store_hits > 0
    assert spent.undo_records_applied == 0


def test_nearby_split_reuses_interval(items_schema):
    """Two different SplitLSNs bracketing zero modifications of a page
    share one stored version — the cross-snapshot reuse the store is for."""
    engine, db = _items_engine()
    clock = engine.env.clock
    fill_items(db, 20)
    clock.advance(5)
    t1 = clock.now()
    clock.advance(5)
    # A committed no-op-for-items transaction moves the SplitLSN without
    # touching the items pages.
    db.create_table(
        ITEMS_SCHEMA.__class__(
            "other",
            ITEMS_SCHEMA.columns,
            key=("id",),
        )
    )
    clock.advance(5)
    t2 = clock.now()
    clock.advance(5)
    with db.transaction() as txn:
        db.update(txn, "items", (0,), {"qty": 999})

    with engine.query_as_of("vdb", t1) as snap:
        rows_t1 = list(snap.scan("items"))
    from repro.core.split_lsn import find_split_lsn

    assert find_split_lsn(db, t1) != find_split_lsn(db, t2)
    before = engine.env.stats.snapshot()
    with engine.query_as_of("vdb", t2) as snap:
        rows_t2 = list(snap.scan("items"))
    spent = engine.env.stats.delta(before)
    assert rows_t2 == rows_t1
    assert spent.version_store_hits > 0


def test_store_disabled_engine_still_correct(items_schema):
    engine = Engine(
        config=DatabaseConfig(page_size=1024, buffer_pool_pages=64),
        version_store_budget=0,
    )
    db = engine.create_database("vdb")
    db.create_table(ITEMS_SCHEMA)
    clock = engine.env.clock
    fill_items(db, 10)
    clock.advance(5)
    t_past = clock.now()
    clock.advance(5)
    with db.transaction() as txn:
        db.delete(txn, "items", (3,))
    with engine.query_as_of("vdb", t_past) as snap:
        assert sum(1 for _ in snap.scan("items")) == 10
    assert engine.version_store.version_count() == 0


# ---------------------------------------------------------------------------
# Property: store-served reads equal the shadow model across histories
# ---------------------------------------------------------------------------

_txn_op = st.tuples(
    st.sampled_from(["insert", "update", "delete"]),
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=-500, max_value=500),
)

_history = st.lists(
    st.tuples(st.lists(_txn_op, min_size=1, max_size=6), st.booleans()),
    min_size=2,
    max_size=15,
)


def _apply_txn(db, txn, model, ops):
    for op, key, val in ops:
        if op == "insert" and key not in model:
            row = (key, f"k{key}", val)
            db.insert(txn, "items", row)
            model[key] = row
        elif op == "update" and key in model:
            model[key] = db.update(txn, "items", (key,), {"qty": val})
        elif op == "delete" and key in model:
            db.delete(txn, "items", (key,))
            del model[key]


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_history)
def test_store_hits_match_shadow_model(history):
    """A store-served read equals an uncached ``PreparePageAsOf`` result:
    run every recorded instant once (publishing), drop all snapshots, and
    run it again — the rebuild is served from stored versions and must
    reproduce the shadow model exactly."""
    engine, db = _items_engine()
    clock = engine.env.clock
    model: dict[int, tuple] = {}
    recorded: list[tuple[float, dict]] = []
    for index, (ops, commit) in enumerate(history):
        clock.advance(10)
        txn = db.begin()
        staged = dict(model)
        _apply_txn(db, txn, staged, ops)
        if commit:
            db.commit(txn)
            model = staged
        else:
            db.rollback(txn)
        recorded.append((clock.now(), dict(model)))
        if index % 5 == 2:
            db.checkpoint()

    for when, expected in recorded:
        with engine.query_as_of("vdb", when) as snap:
            assert {r[0]: r for r in snap.scan("items")} == expected

    engine.snapshot_pool.clear()
    for when, expected in recorded:
        with engine.query_as_of("vdb", when) as snap:
            assert {r[0]: r for r in snap.scan("items")} == expected


def test_store_hits_match_tpcc_history():
    """TPC-C: repeated/nearby as-of stock levels served from the store
    equal the first (uncached) reads."""
    engine = Engine()
    scale = TpccScale(
        warehouses=1, districts_per_warehouse=2, customers_per_district=6, items=30
    )
    db = engine.create_database("tpcc")
    load_tpcc(db, scale, seed=11)
    driver = TpccDriver(db, scale, seed=11, think_time_s=0.1)
    driver.run_transactions(40)
    targets = [engine.env.clock.now() - back for back in (3.0, 2.0, 1.0)]
    driver.run_transactions(10)

    first = [driver.stock_level_as_of(engine, t) for t in targets]
    engine.snapshot_pool.clear()
    before = engine.env.stats.snapshot()
    second = [driver.stock_level_as_of(engine, t) for t in targets]
    spent = engine.env.stats.delta(before)
    assert second == first
    assert spent.version_store_hits > 0


def test_batched_walk_equals_reference_walk():
    """The batched (header-discovery + read_many) walk and the reference
    one-read-per-record walk produce identical pages and intervals."""
    from repro.core.page_undo import prepare_page_version
    from repro.core.split_lsn import find_split_lsn
    from repro.storage.page import Page

    engine, db = _items_engine()
    clock = engine.env.clock
    fill_items(db, 40)
    clock.advance(5)
    split = find_split_lsn(db, clock.now())
    clock.advance(5)
    for round_no in range(3):
        with db.transaction() as txn:
            for i in range(0, 40, 2):
                db.update(txn, "items", (i,), {"qty": round_no * 100 + i})
    db.checkpoint()
    compared = 0
    for page_id in range(db.file_manager.page_count):
        with db.fetch_page(page_id) as guard:
            if not guard.page.is_formatted():
                continue
            current = bytes(guard.page.data)
        batched_page = Page(bytearray(current))
        naive_page = Page(bytearray(current))
        batched = prepare_page_version(
            batched_page, split, db.log, db.env, batched=True
        )
        naive = prepare_page_version(
            naive_page, split, db.log, db.env, batched=False
        )
        assert bytes(batched_page.data) == bytes(naive_page.data), page_id
        assert batched == naive, page_id
        compared += 1
    assert compared > 3


# ---------------------------------------------------------------------------
# Invalidation: eviction, truncation, pool eviction, crash, name reuse
# ---------------------------------------------------------------------------


def test_store_eviction_falls_back_to_chain_walk(items_schema):
    """A budget-evicted version misses; the read re-prepares correctly."""
    engine = Engine(
        config=DatabaseConfig(page_size=1024, buffer_pool_pages=64),
        version_store_budget=2048,  # two small pages
    )
    db = engine.create_database("vdb")
    db.create_table(ITEMS_SCHEMA)
    clock = engine.env.clock
    fill_items(db, 40)
    clock.advance(5)
    t_past = clock.now()
    clock.advance(5)
    with db.transaction() as txn:
        for i in range(40):
            db.update(txn, "items", (i,), {"qty": -i})
    with engine.query_as_of("vdb", t_past) as snap:
        first = list(snap.scan("items"))
    assert engine.version_store.stats.evictions > 0
    engine.snapshot_pool.clear()
    with engine.query_as_of("vdb", t_past) as snap:
        assert list(snap.scan("items")) == first


def test_truncation_gc_spares_pinned_pooled_split(items_schema):
    """A pooled entry's pin keeps its versions; evicting the entry and
    truncating collects them."""
    engine, db = _items_engine()
    clock = engine.env.clock
    db.set_undo_interval(30.0)
    fill_items(db, 10)
    clock.advance(5)
    t_past = clock.now()
    clock.advance(5)
    with db.transaction() as txn:
        db.update(txn, "items", (1,), {"qty": 7})
    with engine.query_as_of("vdb", t_past) as snap:
        list(snap.scan("items"))
    assert engine.version_store.version_count("vdb") > 0

    # Age the pooled split far past the window; its pin holds the log.
    for _ in range(4):
        clock.advance(20)
        with db.transaction() as txn:
            db.update(txn, "items", (2,), {"qty": 5})
        db.checkpoint()
    db.enforce_retention()
    # The pinned pooled split is still served — store versions intact.
    count_before = engine.version_store.version_count("vdb")
    assert count_before > 0
    with engine.query_as_of("vdb", t_past) as snap:
        assert snap.get("items", (1,))[2] == 10

    # Evict the pooled entry (pin released), truncate: versions follow.
    engine.snapshot_pool.clear()
    db.enforce_retention()
    assert db.log.start_lsn > 0
    leftover = engine.version_store.versions("vdb", 0)
    for _version_lsn, limit_lsn in leftover:
        assert limit_lsn > db.log.start_lsn


def test_pool_eviction_then_retention_gcs_store(items_schema):
    """Evicting a pooled entry releases its pin; the next retention
    enforcement truncates past the split and GCs the stranded versions."""
    engine, db = _items_engine()
    clock = engine.env.clock
    db.set_undo_interval(30.0)
    fill_items(db, 10)
    clock.advance(5)
    t_past = clock.now()
    clock.advance(5)
    with db.transaction() as txn:
        db.update(txn, "items", (1,), {"qty": 7})
    with engine.query_as_of("vdb", t_past) as snap:
        list(snap.scan("items"))
    # Age + truncate while pinned (pin holds the floor at the split).
    for _ in range(4):
        clock.advance(20)
        with db.transaction() as txn:
            db.update(txn, "items", (2,), {"qty": 5})
        db.checkpoint()
    db.enforce_retention()
    # Evict (pin released), then enforce: truncation advances and the
    # retention GC drops every version stranded below the new floor.
    engine.snapshot_pool.clear()
    db.enforce_retention()
    floor = db.log.start_lsn
    for page_id in range(db.file_manager.page_count):
        for _v, limit in engine.version_store.versions("vdb", page_id):
            assert limit > floor


def test_crash_invalidates_volatile_intervals(items_schema):
    """Open-ended intervals published against the volatile log tail must
    not survive a crash that rewrites that history."""
    engine, db = _items_engine()
    clock = engine.env.clock
    fill_items(db, 10)
    clock.advance(5)
    t_past = clock.now()
    clock.advance(5)
    with db.transaction() as txn:
        db.update(txn, "items", (1,), {"qty": 123})
    # Publish with the tail volatile (no flush beyond what commit did).
    with engine.query_as_of("vdb", t_past) as snap:
        list(snap.scan("items"))
    durable = db.log.durable_lsn
    db.crash()
    for page_id in range(db.file_manager.page_count + 5):
        for _v, limit in engine.version_store.versions("vdb", page_id):
            assert limit <= durable
    db.recover()
    engine.snapshot_pool.clear()
    with engine.query_as_of("vdb", t_past) as snap:
        assert snap.get("items", (1,))[2] == 10


def test_name_reuse_purges_store(items_schema):
    engine, db = _items_engine()
    clock = engine.env.clock
    fill_items(db, 5)
    clock.advance(5)
    t_past = clock.now()
    clock.advance(5)
    with db.transaction() as txn:
        db.update(txn, "items", (1,), {"qty": 1})
    with engine.query_as_of("vdb", t_past) as snap:
        list(snap.scan("items"))
    assert engine.version_store.version_count("vdb") > 0
    engine.drop_database("vdb")
    assert engine.version_store.version_count("vdb") == 0
    db2 = engine.create_database("vdb")
    db2.create_table(ITEMS_SCHEMA)
    fill_items(db2, 3)
    clock.advance(5)
    with engine.query_as_of("vdb", clock.now()) as snap:
        assert sum(1 for _ in snap.scan("items")) == 3


# ---------------------------------------------------------------------------
# Replica sharing
# ---------------------------------------------------------------------------


def test_replica_pool_shares_primary_store(items_schema):
    """A chain walk paid on the primary serves the replica's pool (and
    vice versa): both publish under the primary's key."""
    engine, db = _items_engine()
    clock = engine.env.clock
    fill_items(db, 20)
    replica = engine.add_replica("vdb", "standby")
    clock.advance(5)
    t_past = clock.now()
    clock.advance(5)
    with db.transaction() as txn:
        for i in range(20):
            db.update(txn, "items", (i,), {"qty": 0})
    db.log.flush()
    engine.replication_tick()

    # Prepare on the primary's pool: publishes under "vdb".
    with engine.snapshot_pool.lease(db, t_past) as snap:
        primary_rows = list(snap.scan("items"))
    before = engine.env.stats.snapshot()
    with replica.read_as_of(t_past) as snap:
        replica_rows = list(snap.scan("items"))
    spent = engine.env.stats.delta(before)
    assert replica_rows == primary_rows
    assert spent.version_store_hits > 0


def test_promotion_diverges_store_key(items_schema):
    engine, db = _items_engine()
    clock = engine.env.clock
    fill_items(db, 10)
    engine.add_replica("vdb", "standby")
    clock.advance(5)
    with db.transaction() as txn:
        db.update(txn, "items", (1,), {"qty": 77})
    db.log.flush()
    engine.replication_tick()
    promoted = engine.promote_replica("standby")
    assert promoted.version_store_key == "standby"
    assert promoted.version_store is engine.version_store
    # The promoted timeline publishes under its own key from now on.
    clock.advance(5)
    t_new = clock.now()
    clock.advance(5)
    with promoted.transaction() as txn:
        promoted.update(txn, "items", (1,), {"qty": -1})
    with engine.query_as_of("standby", t_new) as snap:
        assert snap.get("items", (1,))[2] == 77
    assert engine.version_store.version_count("standby") > 0


# ---------------------------------------------------------------------------
# Satellite: memoized checkpoint chain
# ---------------------------------------------------------------------------


def test_checkpoint_chain_memoized(items_schema):
    from repro.core.split_lsn import checkpoint_chain

    engine, db = _items_engine()
    clock = engine.env.clock
    fill_items(db, 5)
    for _ in range(5):
        clock.advance(10)
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 1})
        db.checkpoint()
    first = list(checkpoint_chain(db))
    assert len(first) >= 5
    # The second walk is served from the per-database cache: no log reads.
    log = db.log
    real_read = log.read
    reads = []

    def counting_read(lsn, **kw):
        reads.append(lsn)
        return real_read(lsn, **kw)

    log.read = counting_read
    try:
        assert list(checkpoint_chain(db)) == first
        assert reads == []
        # A new checkpoint only prepends; old entries stay cached.
        db.checkpoint()
        chain = list(checkpoint_chain(db))
        assert chain[1:] == first
        assert len(reads) == 1
    finally:
        log.read = real_read


def test_checkpoint_chain_cache_cleared_on_crash(items_schema):
    from repro.core.split_lsn import checkpoint_chain

    engine, db = _items_engine()
    fill_items(db, 5)
    db.checkpoint()
    list(checkpoint_chain(db))
    assert db._ckpt_chain_cache
    db.crash()
    assert not db._ckpt_chain_cache
    db.recover()
    assert list(checkpoint_chain(db))


# ---------------------------------------------------------------------------
# Satellite: loginspect --chains
# ---------------------------------------------------------------------------


def test_chain_stats_counts_modifications(items_schema):
    from repro.tools.loginspect import chain_report, chain_stats

    engine, db = _items_engine()
    fill_items(db, 20)
    with db.transaction() as txn:
        for i in range(20):
            db.update(txn, "items", (i,), {"qty": 1})
    stats = chain_stats(db)
    assert stats["pages_scanned"] > 0
    assert stats["total_chain_records"] > 20
    assert stats["batched_undo_reads"] <= stats["naive_undo_reads"]
    assert sum(stats["histogram"].values()) == stats["pages_scanned"]
    report = chain_report(db)
    assert any("est prepare cost" in line for line in report)


def test_chain_stats_bounded_by_split(items_schema):
    from repro.core.split_lsn import find_split_lsn
    from repro.tools.loginspect import chain_stats

    engine, db = _items_engine()
    clock = engine.env.clock
    fill_items(db, 10)
    clock.advance(5)
    split = find_split_lsn(db, clock.now())
    clock.advance(5)
    with db.transaction() as txn:
        for i in range(10):
            db.update(txn, "items", (i,), {"qty": 2})
    full = chain_stats(db)
    bounded = chain_stats(db, split_lsn=split)
    assert bounded["total_chain_records"] < full["total_chain_records"]
    assert bounded["total_chain_records"] >= 10


def test_loginspect_chains_cli(tmp_path, items_schema):
    """--chains over archived segments renders a histogram."""
    from repro.tools.loginspect import main as loginspect_main

    engine = Engine(config=DatabaseConfig(page_size=1024, buffer_pool_pages=64))
    db = engine.create_database("vdb")
    db.create_table(ITEMS_SCHEMA)
    engine.enable_archiving("vdb", directory=str(tmp_path))
    fill_items(db, 10)
    db.log.flush()
    engine.archives["vdb"].poll()
    assert loginspect_main(["--archive", str(tmp_path), "--chains"]) == 0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
