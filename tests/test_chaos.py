"""Chaos-hardened HA: seeded fault injection and engine survival.

* The :class:`~repro.chaos.injector.FaultInjector` is deterministic —
  same seed, same schedule, byte-identical event log — and validates
  rules at arm time so a typo'd fault can never silently not fire.
* The shipper survives transient faults: cursors never skip or
  double-apply a record, corrupt frames are rejected by CRC and healed
  by resend, and every failure lands on the ``repl.ship.*`` gauges and
  the built-in stall/error alerts the failure detector watches.
* A torn archiver flush leaves the archive index gap-free and
  ``loginspect --lint-log`` clean; the retried flush overwrites the torn
  on-disk artifact.
* ``enable_auto_failover`` confirms primary death and promotes the
  most-caught-up healthy replica, re-pointing surviving standbys,
  archiving and read offload — with zero committed writes lost.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import Column, ColumnType, Engine, SimEnv, TableSchema
from repro.chaos import (
    FAULT_KINDS,
    INJECTION_POINTS,
    FaultInjector,
    FaultRule,
    RetryPolicy,
)
from repro.chaos.detector import DOWN, HEALTHY, SUSPECT
from repro.errors import (
    FaultInjectedError,
    ReplicationError,
    ReplicationFaultError,
)
from repro.tools.checkdb import check_database
from repro.tools.loginspect import lint_log_segments

ITEMS = TableSchema(
    "items",
    (
        Column("id", ColumnType.INT),
        Column("name", ColumnType.STR, max_len=64),
        Column("qty", ColumnType.INT),
    ),
    key=("id",),
)


def _fill(db, count: int, start: int = 0) -> None:
    with db.transaction() as txn:
        for i in range(start, start + count):
            db.insert(txn, "items", (i, f"item-{i}", i * 10))


def _pump(engine, seconds: float, step: float = 0.5) -> None:
    """Advance the sim clock in ``step`` ticks, pumping replication."""
    for _ in range(round(seconds / step)):
        engine.env.clock.advance(step)
        engine.replication_tick()


# ----------------------------------------------------------------------
# FaultRule validation: typo'd rules fail at arm time, not silently
# ----------------------------------------------------------------------


class TestFaultRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(point="repl.apply", kind="meteor")

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="matches no known"):
            FaultRule(point="repl.shp.send", kind="transient")

    def test_point_glob_accepted(self):
        rule = FaultRule(point="device.*", kind="stall")
        assert rule.point == "device.*"

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(point="repl.apply", kind="transient", probability=1.5)

    def test_window_ordering(self):
        with pytest.raises(ValueError, match="window"):
            FaultRule(point="repl.apply", kind="stall", window=(2.0, 1.0))

    def test_catalog_covers_every_kind(self):
        assert set(FAULT_KINDS) == {
            "transient", "partition", "stall", "torn", "corrupt", "crash",
        }
        assert "primary" in INJECTION_POINTS


# ----------------------------------------------------------------------
# Injector unit behavior and determinism
# ----------------------------------------------------------------------


class TestFaultInjector:
    def test_transient_raises_typed(self, env):
        chaos = FaultInjector(env.clock, seed=1)
        chaos.add_rule(FaultRule(point="repl.apply", kind="transient"))
        with pytest.raises(FaultInjectedError) as exc:
            chaos.hit("repl.apply", target="sa")
        assert exc.value.transient
        assert exc.value.point == "repl.apply"
        assert exc.value.kind == "transient"

    def test_max_hits_budget(self, env):
        chaos = FaultInjector(env.clock, seed=1)
        chaos.add_rule(
            FaultRule(point="repl.apply", kind="transient", max_hits=2)
        )
        for _ in range(2):
            with pytest.raises(FaultInjectedError):
                chaos.hit("repl.apply")
        chaos.hit("repl.apply")  # budget spent: passes clean
        assert len(chaos.events()) == 2

    def test_at_s_is_a_one_shot(self, env):
        chaos = FaultInjector(env.clock, seed=1)
        chaos.add_rule(
            FaultRule(point="repl.apply", kind="transient", at_s=1.0)
        )
        chaos.hit("repl.apply")  # t=0: not due yet
        env.clock.advance(1.0)
        with pytest.raises(FaultInjectedError):
            chaos.hit("repl.apply")
        chaos.hit("repl.apply")  # fired once, never again

    def test_stall_advances_clock(self, env):
        chaos = FaultInjector(env.clock, seed=1)
        chaos.add_rule(
            FaultRule(
                point="device.write", kind="stall", latency_s=0.25, max_hits=1
            )
        )
        before = env.clock.now()
        chaos.hit("device.write", target="SLC_SSD")
        assert env.clock.now() == pytest.approx(before + 0.25)

    def test_torn_truncates_payload(self, env):
        chaos = FaultInjector(env.clock, seed=1)
        chaos.add_rule(
            FaultRule(point="repl.stream.frame", kind="torn", max_hits=1)
        )
        out = chaos.hit("repl.stream.frame", payload=b"0123456789")
        assert out == b"01234"

    def test_corrupt_flips_exactly_one_byte(self, env):
        chaos = FaultInjector(env.clock, seed=1)
        chaos.add_rule(
            FaultRule(point="repl.stream.frame", kind="corrupt", max_hits=1)
        )
        payload = bytes(range(64))
        out = chaos.hit("repl.stream.frame", payload=payload)
        diffs = [i for i, (a, b) in enumerate(zip(payload, out)) if a != b]
        assert len(diffs) == 1
        assert out[diffs[0]] == payload[diffs[0]] ^ 0xFF

    def test_same_seed_same_schedule(self, env):
        def run(seed):
            chaos = FaultInjector(env.clock, seed=seed)
            chaos.add_rule(
                FaultRule(
                    point="repl.ship.send", kind="transient", probability=0.5
                )
            )
            chaos.add_rule(
                FaultRule(point="repl.stream.frame", kind="corrupt",
                          probability=0.5)
            )
            fired = 0
            for i in range(50):
                try:
                    chaos.hit("repl.ship.send", target=f"sub{i % 3}")
                except FaultInjectedError:
                    fired += 1
                chaos.hit("repl.stream.frame", payload=bytes(32))
            assert 0 < fired < 50  # probabilistic rule actually mixed
            return json.dumps(chaos.events(), sort_keys=True)

        assert run(7) == run(7)

    def test_record_external_lands_on_the_same_timeline(self, env):
        chaos = FaultInjector(env.clock, seed=1)
        chaos.record_external("primary", "crash", "testdb", "operator kill")
        (event,) = chaos.events()
        assert event["seq"] == 0
        assert event["point"] == "primary"
        assert event["detail"] == "operator kill"


# ----------------------------------------------------------------------
# Shipper survival: retry/backoff, cursor safety, CRC heal
# ----------------------------------------------------------------------


class TestShipperRetry:
    def test_transient_send_faults_retry_without_skip_or_double(
        self, engine, db
    ):
        db.create_table(ITEMS)
        _fill(db, 10)
        replica = engine.add_replica("testdb", "sa")
        engine.replication_tick()
        synced = replica.received_lsn

        engine.enable_chaos(
            seed=1,
            rules=[
                FaultRule(
                    point="repl.ship.send", kind="transient",
                    target="sa", max_hits=3,
                )
            ],
        )
        _fill(db, 10, start=10)

        engine.replication_tick()
        assert engine.shipper_errors("testdb")["sa"] == 1
        assert replica.received_lsn == synced  # cursor held, nothing skipped

        _pump(engine, 2.0)  # outlasts backoff; hits 2+3 fire, then heal
        shipper = engine.shipper_for("testdb")
        assert shipper.stats.send_errors == 3
        assert shipper.stats.retries >= 1
        assert engine.shipper_errors("testdb")["sa"] == 0
        assert replica.received_lsn == db.log.durable_lsn
        assert [r[0] for r in replica.scan("items")] == list(range(20))
        kinds = {e["point"] for e in engine.fault_events()}
        assert "repl.ship.send" in kinds

    def test_corrupt_frame_rejected_by_crc_then_healed(self, engine, db):
        db.create_table(ITEMS)
        replica = engine.add_replica("testdb", "sa")
        engine.replication_tick()
        engine.enable_chaos(
            seed=2,
            rules=[
                FaultRule(
                    point="repl.stream.frame", kind="corrupt",
                    target="sa", max_hits=1,
                )
            ],
        )
        before = replica.received_lsn
        _fill(db, 8)
        engine.replication_tick()
        # The flipped byte failed the frame CRC on the replica: the
        # cursor did not move and the failure is on the health surface.
        assert replica.received_lsn == before
        assert engine.shipper_errors("testdb")["sa"] == 1

        _pump(engine, 1.0)  # resend the exact same range
        assert engine.shipper_errors("testdb")["sa"] == 0
        assert [r[0] for r in replica.scan("items")] == list(range(8))
        assert engine.shipper_for("testdb").stats.retries == 1

    def test_replication_fault_error_is_typed_and_resumable(
        self, engine, db
    ):
        db.create_table(ITEMS)
        replica = engine.add_replica("testdb", "sa")
        engine.replication_tick()
        cursor = replica.received_lsn
        with pytest.raises(ReplicationFaultError) as exc:
            replica.receive(b"\x00" * 40)  # garbage on the wire
        assert isinstance(exc.value, ReplicationError)
        assert exc.value.transient
        assert exc.value.resume_lsn == cursor
        assert replica.received_lsn == cursor

    def test_apply_fault_contained_and_routed_around(self, engine, db):
        db.create_table(ITEMS)
        sa = engine.add_replica("testdb", "sa")
        sb = engine.add_replica("testdb", "sb")
        engine.enable_read_offload()
        engine.replication_tick()
        now = engine.env.clock.now()
        engine.enable_chaos(
            seed=3,
            rules=[
                FaultRule(
                    point="repl.apply", kind="transient",
                    target="sa", window=(now, now + 1.0),
                )
            ],
        )
        _fill(db, 6)
        engine.replication_tick()
        assert sa.is_faulted()
        assert not sb.is_faulted()
        # Degrade gracefully: reads route around the faulted standby.
        assert engine.routing_replica("testdb") is sb
        _pump(engine, 2.0)  # window closes, backoff elapses, apply heals
        assert not sa.is_faulted()
        assert [r[0] for r in sa.scan("items")] == list(range(6))
        routed = engine.routing_replica("testdb")
        assert routed is not None and not routed.is_faulted()


# ----------------------------------------------------------------------
# Stall detection: gauges + built-in alerts (satellite 1)
# ----------------------------------------------------------------------


class TestStallDetection:
    def test_consecutive_errors_gauge_exported(self, engine, db):
        engine.add_replica("testdb", "sa")
        names = engine.env.metrics.names(like="repl.ship.sa.*")
        assert "repl.ship.sa.consecutive_errors" in names
        assert "repl.ship.sa.progress_t" in names

    def test_crash_fires_error_and_stall_alerts(self, engine, db):
        db.create_table(ITEMS)
        _fill(db, 5)
        engine.add_replica("testdb", "sa")
        engine.start_monitor()
        _pump(engine, 1.0)
        assert engine.alert_events() == []  # healthy: nothing fires

        engine.crash_database("testdb")
        _pump(engine, 6.0)  # outlasts ship_stall_s=5.0
        firing = {
            e["rule"] for e in engine.alert_events() if e["event"] == "firing"
        }
        assert "repl.ship_errors" in firing
        assert "repl.ship_stall" in firing
        # The streak gauge kept counting the failed polls.
        gauge = engine.env.metrics.get("repl.ship.sa.consecutive_errors")
        assert gauge.value >= 3
        # The progress gauge was unregistered — that absence IS the signal.
        assert engine.env.metrics.names(like="repl.ship.sa.progress_t") == []


# ----------------------------------------------------------------------
# Torn archiver flush (satellite 3)
# ----------------------------------------------------------------------


class TestArchiverTornFlush:
    def test_torn_flush_leaves_archive_lint_clean(
        self, engine, db, tmp_path
    ):
        arch_dir = str(tmp_path / "arch")
        db.create_table(ITEMS)
        _fill(db, 10)
        archiver = engine.enable_archiving("testdb", directory=arch_dir)
        engine.replication_tick()
        baseline_files = set(os.listdir(arch_dir))

        engine.enable_chaos(
            seed=4,
            rules=[
                FaultRule(
                    point="archive.flush", kind="transient",
                    target="testdb", max_hits=1,
                )
            ],
        )
        _fill(db, 10, start=10)
        engine.replication_tick()
        # The crash-mid-flush left a torn partial file on the medium but
        # the in-memory index never admitted the segment: no gap, and the
        # archiver's subscription is marked failing.
        torn = set(os.listdir(arch_dir)) - baseline_files
        assert len(torn) == 1
        torn_path = os.path.join(arch_dir, torn.pop())
        torn_size = os.path.getsize(torn_path)
        assert engine.shipper_errors("testdb")[archiver.name] == 1
        assert lint_log_segments(archiver.store, db_name="testdb") == []

        _pump(engine, 1.0)  # the retried flush overwrites the torn artifact
        assert engine.shipper_errors("testdb")[archiver.name] == 0
        assert os.path.getsize(torn_path) > torn_size
        # Both the live store and the raw on-disk directory lint clean.
        assert lint_log_segments(archiver.store, db_name="testdb") == []
        assert lint_log_segments(arch_dir) == []
        lo, hi = archiver.store.coverage("testdb")
        assert hi == db.log.durable_lsn

    def test_restore_plan_covers_only_durable_archive(self, engine, db):
        from repro.archive.restore import plan_restore

        db.create_table(ITEMS)
        _fill(db, 10)
        engine.backup_database("testdb")
        engine.replication_tick()
        store = engine.archives["testdb"].store
        engine.enable_chaos(
            seed=5,
            rules=[
                FaultRule(
                    point="archive.flush", kind="transient",
                    target="testdb", max_hits=1,
                )
            ],
        )
        _fill(db, 10, start=10)
        engine.env.clock.advance(0.5)
        engine.replication_tick()  # flush fails; tail not yet archived
        _lo, durable_hi = store.coverage("testdb")
        plan = plan_restore(store, "testdb", engine.env.clock.now())
        # The plan's split never reaches past what the archive durably
        # holds — the torn tail is simply not part of the timeline yet.
        assert plan.split_lsn <= durable_hi


# ----------------------------------------------------------------------
# Auto-failover end to end
# ----------------------------------------------------------------------


class TestAutoFailover:
    def test_failover_promotes_most_caught_up_and_loses_nothing(
        self, engine, db
    ):
        db.create_table(ITEMS)
        _fill(db, 5)
        sa = engine.add_replica("testdb", "sa")
        sb = engine.add_replica("testdb", "sb")
        engine.enable_read_offload()
        engine.enable_auto_failover(confirm_s=2.0)
        chaos = engine.enable_chaos(seed=6)
        _pump(engine, 1.0)

        # Partition sb through the crash: sa becomes the most-caught-up
        # survivor, so LSN beats sb's larger-name tie-break.
        now = engine.env.clock.now()
        chaos.add_rule(
            FaultRule(
                point="repl.ship.send", kind="partition",
                target="sb", window=(now, now + 6.0),
            )
        )
        _fill(db, 10, start=5)
        committed = [r[0] for r in db.scan("items")]
        _pump(engine, 0.5)
        assert sa.received_lsn > sb.received_lsn

        chaos.schedule_crash("testdb", engine.env.clock.now() + 0.5)
        _pump(engine, 6.0)

        # The dead primary is gone; sa was promoted; the detector's
        # verdict and every step are on the HA timeline.
        assert "testdb" not in engine.databases
        assert engine.ha.completed == {"testdb": "sa"}
        promoted = engine.database("sa")
        assert engine.ha.detector.state("testdb") == DOWN
        ha_kinds = [e["event"] for e in engine.ha_events]
        assert ha_kinds.count("failover") == 1
        for step in ("crash", "suspect", "confirmed_down", "failover"):
            assert step in ha_kinds

        # Zero committed writes lost, and the survivor checks clean.
        assert [r[0] for r in promoted.scan("items")] == committed
        assert check_database(promoted).ok

        # sb was re-pointed at the new primary; once its partition window
        # closes it catches up and read offload follows.
        _pump(engine, 6.0)
        assert sb.primary is promoted
        assert [r[0] for r in sb.scan("items")] == committed
        assert engine.routing_replica("sa") is sb

        # The new primary is writable and keeps replicating.
        _fill(promoted, 1, start=15)
        _pump(engine, 0.5)
        assert sb.get("items", (15,)) is not None

    def test_failover_with_archiving_continues_the_store(self, engine, db):
        db.create_table(ITEMS)
        _fill(db, 5)
        engine.add_replica("testdb", "sa")
        archiver = engine.enable_archiving("testdb")
        store = archiver.store
        engine.replication_tick()
        promoted = engine.failover_to_replica("testdb")
        assert promoted.name == "sa"
        assert "testdb" in engine.archives and engine.archives["testdb"].closed
        assert engine.archives["sa"].store is store
        _fill(promoted, 5, start=5)
        engine.replication_tick()
        assert store.coverage("sa")[1] == promoted.log.durable_lsn

    def test_failover_without_survivors_refuses(self, engine, db):
        engine.crash_database("testdb")
        with pytest.raises(ReplicationError, match="no surviving replica"):
            engine.failover_to_replica("testdb")

    def test_named_winner_overrides_catch_up_ranking(self, engine, db):
        db.create_table(ITEMS)
        _fill(db, 5)
        engine.add_replica("testdb", "sa")
        engine.add_replica("testdb", "sb")
        engine.replication_tick()
        promoted = engine.failover_to_replica("testdb", "sa")
        assert promoted.name == "sa"
        assert engine.replica("sb").primary is promoted

    def test_detector_recovers_a_transient_suspect(self, engine, db):
        db.create_table(ITEMS)
        _fill(db, 5)
        engine.add_replica("testdb", "sa")
        engine.enable_auto_failover(confirm_s=5.0)
        chaos = engine.enable_chaos(seed=8)
        _pump(engine, 1.0)
        now = engine.env.clock.now()
        # A short partition: long enough to alert (the monitor samples
        # every 1.0s, so the streak must straddle a sample), shorter
        # than confirm_s.
        chaos.add_rule(
            FaultRule(
                point="repl.ship.send", kind="partition",
                target="sa", window=(now, now + 3.0),
            )
        )
        _fill(db, 5, start=5)
        _pump(engine, 2.0)  # streak past the threshold at a sample point
        assert engine.ha.detector.state("testdb") == SUSPECT
        _pump(engine, 4.0)  # link heals before the verdict lands
        assert engine.ha.detector.state("testdb") == HEALTHY
        assert "testdb" in engine.databases
        assert engine.ha.completed == {}


# ----------------------------------------------------------------------
# Whole-scenario determinism: the CI diff contract
# ----------------------------------------------------------------------


def _failover_scenario(seed: int) -> str:
    """One full partition+crash+failover run; returns its timelines."""
    engine = Engine(SimEnv.for_tests())
    db = engine.create_database("testdb")
    db.create_table(ITEMS)
    _fill(db, 5)
    engine.add_replica("testdb", "sa")
    engine.add_replica("testdb", "sb")
    engine.enable_read_offload()
    engine.enable_auto_failover(confirm_s=2.0)
    chaos = engine.enable_chaos(seed=seed)
    chaos.add_rule(
        FaultRule(
            point="repl.ship.send", kind="transient",
            target="s?", probability=0.3, window=(0.0, 3.0),
        )
    )
    # Keep bytes flowing through the fault window so the probabilistic
    # rule actually gets draws (sends only happen with pending log).
    for i in range(4):
        _fill(db, 3, start=5 + 3 * i)
        _pump(engine, 0.5)
    chaos.schedule_crash("testdb", engine.env.clock.now() + 0.5)
    _pump(engine, 6.0)
    return json.dumps(
        {
            "faults": engine.fault_events(),
            "ha": engine.ha_events,
            "alerts": engine.alert_events(),
            "promoted": sorted(engine.databases),
        },
        sort_keys=True,
    )


class TestDeterminism:
    def test_same_seed_byte_identical_timelines(self):
        assert _failover_scenario(7) == _failover_scenario(7)

    def test_seed_actually_steers_the_schedule(self):
        runs = {
            json.dumps(
                json.loads(_failover_scenario(seed))["faults"],
                sort_keys=True,
            )
            for seed in (7, 8, 9)
        }
        assert len(runs) > 1


# ----------------------------------------------------------------------
# SHOW FAULTS
# ----------------------------------------------------------------------


class TestShowFaults:
    def test_show_faults_empty_without_chaos(self, engine, db):
        result = engine.sql("SHOW FAULTS")
        assert result.rows == []

    def test_show_faults_mirrors_the_event_log(self, engine, db):
        db.create_table(ITEMS)
        engine.add_replica("testdb", "sa")
        engine.enable_chaos(
            seed=9,
            rules=[
                FaultRule(
                    point="repl.ship.send", kind="transient",
                    target="sa", max_hits=2,
                )
            ],
        )
        _fill(db, 4)
        _pump(engine, 1.0)
        result = engine.sql("SHOW FAULTS")
        assert result.columns == (
            "seq", "t", "point", "kind", "target", "detail"
        )
        assert [row[0] for row in result.rows] == [
            e["seq"] for e in engine.fault_events()
        ]
        assert {row[2] for row in result.rows} == {"repl.ship.send"}


# ----------------------------------------------------------------------
# RetryPolicy arithmetic
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(base_delay_s=0.05, multiplier=2.0, max_delay_s=5.0)
        assert policy.delay(0) == 0.0
        assert policy.delay(1) == pytest.approx(0.05)
        assert policy.delay(2) == pytest.approx(0.10)
        assert policy.delay(3) == pytest.approx(0.20)
        assert policy.delay(20) == 5.0

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=1.0, max_delay_s=0.5)
