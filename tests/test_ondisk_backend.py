"""A database over the real-file backend (the non-default storage)."""

from __future__ import annotations

from repro import DatabaseConfig
from repro.engine.database import Database
from repro.storage.datafile import OnDiskDataFile
from tests.conftest import ITEMS_SCHEMA, fill_items


def make_disk_db(tmp_path, engine, name="diskdb"):
    path = str(tmp_path / f"{name}.pages")
    datafile = OnDiskDataFile(path, DatabaseConfig().page_size)
    db = Database(name, DatabaseConfig(), engine.env, datafile=datafile)
    engine.databases[name] = db
    return db, path


class TestOnDiskDatabase:
    def test_basic_crud(self, tmp_path, engine):
        db, _path = make_disk_db(tmp_path, engine)
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 50)
        assert db.get("items", (25,)) == (25, "item-25", 250)
        with db.transaction() as txn:
            db.delete(txn, "items", (25,))
        assert db.get("items", (25,)) is None
        db.file_manager.datafile.close()

    def test_crash_recovery_on_disk(self, tmp_path, engine):
        db, _path = make_disk_db(tmp_path, engine)
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 30)
        db.checkpoint()
        txn = db.begin()
        db.insert(txn, "items", (99, "loser", 0))
        db.log.flush()
        db.crash()
        db.recover()
        assert db.get("items", (99,)) is None
        assert sum(1 for _ in db.scan("items")) == 30
        db.file_manager.datafile.close()

    def test_asof_snapshot_over_disk_backend(self, tmp_path, engine):
        db, _path = make_disk_db(tmp_path, engine)
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 20)
        mark = db.env.clock.now()
        db.env.clock.advance(5)
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": -1})
        snap = engine.create_asof_snapshot("diskdb", "past", mark)
        assert snap.get("items", (1,))[2] == 10
        db.file_manager.datafile.close()

    def test_durable_bytes_actually_on_disk(self, tmp_path, engine):
        import os

        db, path = make_disk_db(tmp_path, engine)
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 100)
        db.checkpoint()
        db.file_manager.datafile.flush()
        assert os.path.getsize(path) >= 5 * db.config.page_size
        db.file_manager.datafile.close()
