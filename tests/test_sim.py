"""Unit tests for the simulated clock, devices, and counters."""

from __future__ import annotations

from datetime import datetime, timezone

import pytest

from repro.sim.clock import SIM_EPOCH, SimClock
from repro.sim.device import SAS_10K, SLC_SSD, ZERO_COST, SimDevice
from repro.sim.iostats import IoStats


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(12.5).now() == 12.5

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now() == pytest.approx(4.0)

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(5.0)
        clock.advance_to(1.0)
        assert clock.now() == 5.0

    def test_datetime_round_trip(self):
        clock = SimClock()
        clock.advance(3600)
        moment = clock.to_datetime()
        assert SimClock.from_datetime(moment) == pytest.approx(3600.0)

    def test_epoch_rendering(self):
        assert SimClock().to_datetime(0.0) == SIM_EPOCH

    def test_naive_datetime_assumed_utc(self):
        naive = datetime(2012, 3, 22, 13, 0, 0)
        aware = datetime(2012, 3, 22, 13, 0, 0, tzinfo=timezone.utc)
        assert SimClock.from_datetime(naive) == SimClock.from_datetime(aware)


class TestDeviceProfiles:
    def test_sas_random_read_slower_than_ssd(self):
        assert SAS_10K.rand_read_time(8192) > 10 * SLC_SSD.rand_read_time(8192)

    def test_sequential_faster_than_random_on_sas(self):
        # Per byte, streaming beats seeking by a wide margin on spindles.
        seq = SAS_10K.seq_read_time(1 << 20) / (1 << 20)
        rand = SAS_10K.rand_read_time(8192) / 8192
        assert rand > 50 * seq

    def test_zero_cost_is_free(self):
        assert ZERO_COST.rand_read_time(8192) == 0.0
        assert ZERO_COST.seq_write_time(1 << 30) == 0.0

    def test_transfer_term_scales_with_size(self):
        small = SLC_SSD.seq_read_time(4096)
        large = SLC_SSD.seq_read_time(40960)
        assert large > small


class TestSimDevice:
    def test_read_advances_clock(self):
        clock = SimClock()
        device = SimDevice(SAS_10K, clock)
        spent = device.read_random(8192)
        assert clock.now() == pytest.approx(spent)
        assert spent == pytest.approx(SAS_10K.rand_read_time(8192))

    def test_busy_seconds_accumulate(self):
        clock = SimClock()
        device = SimDevice(SLC_SSD, clock)
        device.write_seq(1 << 20)
        device.read_random(8192)
        assert device.busy_seconds == pytest.approx(clock.now())
        assert device.ops == 2

    def test_shared_clock_serializes_devices(self):
        clock = SimClock()
        data = SimDevice(SAS_10K, clock)
        log = SimDevice(SLC_SSD, clock)
        data.read_random(8192)
        log.write_seq(4096)
        assert clock.now() == pytest.approx(data.busy_seconds + log.busy_seconds)


class TestIoStats:
    def test_counters_start_zero(self):
        stats = IoStats()
        assert stats.page_reads == 0
        assert stats.undo_log_reads == 0

    def test_bump_known_counter(self):
        stats = IoStats()
        stats.bump("page_reads", 3)
        assert stats.page_reads == 3
        assert stats.get("page_reads") == 3

    def test_bump_adhoc_counter(self):
        stats = IoStats()
        stats.bump("custom_thing")
        stats.bump("custom_thing", 4)
        assert stats.get("custom_thing") == 5
        assert stats.as_dict()["custom_thing"] == 5

    def test_snapshot_is_frozen_copy(self):
        stats = IoStats()
        stats.page_reads = 7
        snap = stats.snapshot()
        stats.page_reads = 10
        assert snap.page_reads == 7

    def test_delta(self):
        stats = IoStats()
        stats.page_reads = 5
        before = stats.snapshot()
        stats.page_reads = 12
        stats.bump("adhoc", 2)
        diff = stats.delta(before)
        assert diff.page_reads == 7
        assert diff.get("adhoc") == 2

    def test_reset(self):
        stats = IoStats()
        stats.page_reads = 5
        stats.bump("adhoc")
        stats.reset()
        assert stats.page_reads == 0
        assert stats.get("adhoc") == 0

    def test_unknown_get_returns_zero(self):
        assert IoStats().get("never_seen") == 0

    def test_concurrent_bumps_and_snapshots_are_atomic(self):
        """The leaf-lock contract the concurrent engine relies on: ad-hoc
        bumps from many threads all land, and every snapshot taken
        mid-storm is internally consistent (no torn _extra dict)."""
        import threading

        stats = IoStats()
        barrier = threading.Barrier(5)
        snapshots = []

        def bumper():
            barrier.wait(10.0)
            for _ in range(500):
                stats.bump("storm_counter")

        def observer():
            barrier.wait(10.0)
            for _ in range(200):
                snapshots.append(stats.snapshot().get("storm_counter"))

        threads = [threading.Thread(target=bumper) for _ in range(4)]
        threads.append(threading.Thread(target=observer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
            assert not t.is_alive()
        assert stats.get("storm_counter") == 4 * 500
        # Observed values never exceed the final total and never regress.
        assert all(0 <= v <= 2000 for v in snapshots)
        assert snapshots == sorted(snapshots)

    def test_concurrent_clock_advances_all_land(self):
        """SimClock.advance is a locked read-modify-write: concurrent
        advances must sum exactly, never lose an increment."""
        import threading

        clock = SimClock()
        barrier = threading.Barrier(4)

        def advancer():
            barrier.wait(10.0)
            for _ in range(1000):
                clock.advance(0.5)

        threads = [threading.Thread(target=advancer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
            assert not t.is_alive()
        assert clock.now() == pytest.approx(4 * 1000 * 0.5)
