"""B-tree tests: CRUD, splits across levels, scans, invariants."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.btree import BTree, decode_entry, encode_entry
from repro.errors import DuplicateKeyError, KeyNotFoundError
from tests.conftest import ITEMS_SCHEMA, fill_items


def tree_of(db, name="items") -> BTree:
    return db.table(name).accessor


class TestEntryCodec:
    def test_inf_entry(self):
        child, key = decode_entry(encode_entry(42, None))
        assert child == 42
        assert key is None

    def test_keyed_entry(self):
        child, key = decode_entry(encode_entry(7, b"\x01\x02"))
        assert child == 7
        assert key == b"\x01\x02"


class TestCrud:
    def test_get_missing(self, items_db):
        assert items_db.get("items", (1,)) is None

    def test_insert_get(self, items_db):
        with items_db.transaction() as txn:
            items_db.insert(txn, "items", (1, "one", 10))
        assert items_db.get("items", (1,)) == (1, "one", 10)

    def test_duplicate_rejected(self, items_db):
        with items_db.transaction() as txn:
            items_db.insert(txn, "items", (1, "one", 10))
        with pytest.raises(DuplicateKeyError):
            with items_db.transaction() as txn:
                items_db.insert(txn, "items", (1, "again", 0))
        # The failed transaction rolled back cleanly.
        assert items_db.get("items", (1,)) == (1, "one", 10)

    def test_delete_missing_raises(self, items_db):
        with pytest.raises(KeyNotFoundError):
            with items_db.transaction() as txn:
                items_db.delete(txn, "items", (404,))

    def test_update_missing_raises(self, items_db):
        with pytest.raises(KeyNotFoundError):
            with items_db.transaction() as txn:
                items_db.update(txn, "items", (404,), {"qty": 1})

    def test_update_key_change_rejected(self, items_db):
        from repro.errors import StorageError

        with items_db.transaction() as txn:
            items_db.insert(txn, "items", (1, "one", 10))
        tree = tree_of(items_db)
        with pytest.raises(StorageError):
            with items_db.transaction() as txn:
                tree.update(txn, (1,), (2, "one", 10))

    def test_dict_row_insert(self, items_db):
        with items_db.transaction() as txn:
            items_db.insert(txn, "items", {"id": 5, "name": "five", "qty": 50})
        assert items_db.get("items", (5,)) == (5, "five", 50)


class TestSplits:
    def test_leaf_splits_preserve_all_rows(self, small_db):
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 300)
        assert tree_of(db).height() >= 2
        rows = list(db.scan("items"))
        assert len(rows) == 300
        assert [r[0] for r in rows] == list(range(300))

    def test_multi_level_tree(self, small_db):
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 2000)
        tree = tree_of(db)
        assert tree.height() >= 3
        assert tree.count() == 2000
        # Spot-check point queries after deep splits.
        for key in (0, 999, 1999, 1234):
            assert db.get("items", (key,))[0] == key

    def test_reverse_insert_order(self, small_db):
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        with db.transaction() as txn:
            for i in range(500, 0, -1):
                db.insert(txn, "items", (i, f"i{i}", i))
        rows = [r[0] for r in db.scan("items")]
        assert rows == list(range(1, 501))

    def test_random_insert_order(self, small_db):
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        keys = list(range(800))
        random.Random(7).shuffle(keys)
        with db.transaction() as txn:
            for k in keys:
                db.insert(txn, "items", (k, f"i{k}", k))
        assert [r[0] for r in db.scan("items")] == list(range(800))

    def test_growing_updates_force_splits(self, small_db):
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 60)
        with db.transaction() as txn:
            for i in range(60):
                db.update(txn, "items", (i,), {"name": "x" * 60})
        rows = list(db.scan("items"))
        assert len(rows) == 60
        assert all(r[1] == "x" * 60 for r in rows)

    def test_page_ids_covers_tree(self, small_db):
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 500)
        tree = tree_of(db)
        pids = tree.page_ids()
        assert tree.root_page_id in pids
        assert len(pids) == len(set(pids))
        assert len(pids) > 3


class TestScans:
    def test_range_scan(self, small_db):
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 200)
        rows = list(db.scan("items", lo=(50,), hi=(59,)))
        assert [r[0] for r in rows] == list(range(50, 60))

    def test_scan_open_ended(self, small_db):
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 100)
        assert [r[0] for r in db.scan("items", lo=(90,))] == list(range(90, 100))
        assert [r[0] for r in db.scan("items", hi=(9,))] == list(range(10))

    def test_scan_empty_table(self, items_db):
        assert list(items_db.scan("items")) == []

    def test_scan_after_deletes(self, small_db):
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 150)
        with db.transaction() as txn:
            for i in range(0, 150, 3):
                db.delete(txn, "items", (i,))
        rows = [r[0] for r in db.scan("items")]
        assert rows == [i for i in range(150) if i % 3]

    def test_composite_key_ordering(self, engine, wide_schema):
        db = engine.create_database("wide_db")
        db.create_table(wide_schema)
        with db.transaction() as txn:
            for k1 in (2, 1):
                for k2 in ("b", "a"):
                    db.insert(txn, "wide", (k1, k2, 0.0, False, None, None))
        keys = [(r[0], r[1]) for r in db.scan("wide")]
        assert keys == [(1, "a"), (1, "b"), (2, "a"), (2, "b")]


class TestDeleteChurn:
    def test_empty_then_refill(self, small_db):
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 300)
        with db.transaction() as txn:
            for i in range(300):
                db.delete(txn, "items", (i,))
        assert list(db.scan("items")) == []
        fill_items(db, 100, start=1000)
        assert tree_of(db).count() == 100


# ---------------------------------------------------------------------------
# Property: random op sequences match a dict model.
# ---------------------------------------------------------------------------

_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "update", "get"]),
        st.integers(min_value=0, max_value=120),
        st.text(min_size=0, max_size=24),
    ),
    min_size=1,
    max_size=120,
)


@settings(max_examples=40, deadline=None)
@given(_ops)
def test_btree_matches_dict_model(ops):
    from repro import DatabaseConfig, Engine

    engine = Engine(config=DatabaseConfig(page_size=1024, buffer_pool_pages=64))
    db = engine.create_database("prop")
    db.create_table(ITEMS_SCHEMA)
    model: dict[int, tuple] = {}
    with db.transaction() as txn:
        for op, key, text in ops:
            if op == "insert" and key not in model:
                row = (key, text, key * 2)
                db.insert(txn, "items", row)
                model[key] = row
            elif op == "delete" and key in model:
                db.delete(txn, "items", (key,))
                del model[key]
            elif op == "update" and key in model:
                row = db.update(txn, "items", (key,), {"name": text})
                model[key] = row
            elif op == "get":
                assert db.get("items", (key,), txn) == model.get(key)
    assert {r[0]: r for r in db.scan("items")} == model
