"""Allocation map tests: logged allocation, ever-allocated tracking."""

from __future__ import annotations

import pytest

from repro.errors import AllocationError
from repro.storage.allocation import FIRST_MAP_PAGE_ID


class TestGeometry:
    def test_map_page_for(self, db):
        alloc = db.alloc
        map_pid, local = alloc.map_page_for(2)
        assert map_pid == FIRST_MAP_PAGE_ID
        assert local == 0

    def test_boot_not_allocatable(self, db):
        with pytest.raises(AllocationError):
            db.alloc.map_page_for(0)

    def test_map_page_not_allocatable(self, db):
        with pytest.raises(AllocationError):
            db.alloc.map_page_for(FIRST_MAP_PAGE_ID)

    def test_is_map_page(self, db):
        alloc = db.alloc
        assert alloc.is_map_page(1)
        assert not alloc.is_map_page(2)
        stride = alloc.pages_per_map + 1
        assert alloc.is_map_page(1 + stride)


class TestAllocate:
    def test_bootstrap_claimed_catalog_roots(self, db):
        assert db.alloc.is_allocated(2)
        assert db.alloc.is_allocated(3)

    def test_fresh_allocation_not_ever_allocated(self, db):
        with db.transaction() as txn:
            pid, was_ever = db.alloc.allocate(txn)
        assert not was_ever
        assert db.alloc.is_allocated(pid)
        assert db.alloc.was_ever_allocated(pid)

    def test_sequential_allocations_distinct(self, db):
        with db.transaction() as txn:
            pids = [db.alloc.allocate(txn)[0] for _ in range(20)]
        assert len(set(pids)) == 20

    def test_deallocate_frees_keeps_ever(self, db):
        with db.transaction() as txn:
            pid, _ = db.alloc.allocate(txn)
        with db.transaction() as txn:
            db.alloc.deallocate(txn, pid)
        assert not db.alloc.is_allocated(pid)
        assert db.alloc.was_ever_allocated(pid)

    def test_reallocation_reports_ever_allocated(self, db):
        with db.transaction() as txn:
            pid, _ = db.alloc.allocate(txn)
        with db.transaction() as txn:
            db.alloc.deallocate(txn, pid)
        with db.transaction() as txn:
            pid2, was_ever = db.alloc.allocate(txn)
        assert pid2 == pid  # hint makes freed pages reusable
        assert was_ever

    def test_double_deallocate_rejected(self, db):
        with db.transaction() as txn:
            pid, _ = db.alloc.allocate(txn)
        with db.transaction() as txn:
            db.alloc.deallocate(txn, pid)
            with pytest.raises(AllocationError):
                db.alloc.deallocate(txn, pid)

    def test_rollback_releases_pages(self, db):
        txn = db.begin()
        pid, _ = db.alloc.allocate(txn)
        db.rollback(txn)
        assert not db.alloc.is_allocated(pid)
        # First-time allocation rolled back: ever-bit restored too.
        assert not db.alloc.was_ever_allocated(pid)

    def test_rollback_of_dealloc_restores(self, db):
        with db.transaction() as txn:
            pid, _ = db.alloc.allocate(txn)
        txn = db.begin()
        db.alloc.deallocate(txn, pid)
        db.rollback(txn)
        assert db.alloc.is_allocated(pid)

    def test_allocated_page_ids_includes_infrastructure(self, db):
        pages = db.alloc.allocated_page_ids()
        assert 0 in pages  # boot
        assert FIRST_MAP_PAGE_ID in pages
        assert 2 in pages and 3 in pages


class TestAllocationScale:
    def test_many_allocations_stay_consistent(self, small_db):
        db = small_db
        with db.transaction() as txn:
            pids = [db.alloc.allocate(txn)[0] for _ in range(200)]
        allocated = set(db.alloc.allocated_page_ids())
        for pid in pids:
            assert pid in allocated

    def test_free_reuse_after_mixed_churn(self, db):
        with db.transaction() as txn:
            pids = [db.alloc.allocate(txn)[0] for _ in range(10)]
        with db.transaction() as txn:
            for pid in pids[::2]:
                db.alloc.deallocate(txn, pid)
        with db.transaction() as txn:
            reused = [db.alloc.allocate(txn) for _ in range(5)]
        assert all(was_ever for _pid, was_ever in reused)
        assert {pid for pid, _ in reused} == set(pids[::2])
