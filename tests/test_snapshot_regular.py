"""Regular (copy-on-write) snapshot tests — the baseline feature."""

from __future__ import annotations

import pytest

from repro.errors import SnapshotError
from tests.conftest import fill_items


class TestCowSnapshot:
    def test_sees_creation_state(self, engine, items_db):
        db = items_db
        fill_items(db, 10)
        snap = engine.create_snapshot("itemsdb", "now")
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 111})
            db.delete(txn, "items", (2,))
        assert snap.get("items", (1,))[2] == 10
        assert snap.get("items", (2,)) is not None
        assert db.get("items", (1,))[2] == 111

    def test_cow_pushes_pre_images(self, engine, items_db):
        db = items_db
        fill_items(db, 10)
        snap = engine.create_snapshot("itemsdb", "cow")
        assert snap.cow_pushed_pages() == 0
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 111})
        assert snap.cow_pushed_pages() > 0

    def test_cow_pushes_once_per_page(self, engine, items_db):
        db = items_db
        fill_items(db, 10)
        snap = engine.create_snapshot("itemsdb", "once")
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 1})
        pushed = snap.cow_pushed_pages()
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 2})
            db.update(txn, "items", (3,), {"qty": 3})
        # Same leaf page: no additional pushes.
        assert snap.cow_pushed_pages() == pushed

    def test_no_undo_needed_on_cow_reads(self, engine, items_db):
        """COW misses find pages with pageLSN <= split: zero undo work."""
        db = items_db
        fill_items(db, 10)
        snap = engine.create_snapshot("itemsdb", "clean")
        before = db.env.stats.snapshot()
        assert sum(1 for _ in snap.scan("items")) == 10
        assert db.env.stats.delta(before).undo_records_applied == 0

    def test_drop_unregisters_hook(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        snap = engine.create_snapshot("itemsdb", "temp")
        engine.drop_snapshot("temp")
        assert db.modifier.cow_hooks == []
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 9})
        assert snap.cow_pushed_pages() == 0

    def test_cow_and_asof_agree(self, engine, items_db):
        """A COW snapshot and an as-of snapshot of the same instant see
        identical data — proactive vs on-demand, same result."""
        db = items_db
        fill_items(db, 20)
        t0 = db.env.clock.now()
        cow = engine.create_snapshot("itemsdb", "cow2")
        db.env.clock.advance(10)
        with db.transaction() as txn:
            for i in range(10):
                db.update(txn, "items", (i,), {"qty": -i})
        asof = engine.create_asof_snapshot("itemsdb", "asof2", t0)
        assert list(cow.scan("items")) == list(asof.scan("items"))

    def test_multiple_cow_snapshots(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        s1 = engine.create_snapshot("itemsdb", "s1")
        with db.transaction() as txn:
            db.update(txn, "items", (0,), {"qty": 100})
        s2 = engine.create_snapshot("itemsdb", "s2")
        with db.transaction() as txn:
            db.update(txn, "items", (0,), {"qty": 200})
        assert s1.get("items", (0,))[2] == 0
        assert s2.get("items", (0,))[2] == 100
        assert db.get("items", (0,))[2] == 200

    def test_drop_database_drops_snapshots(self, engine, items_db):
        fill_items(items_db, 3)
        engine.create_snapshot("itemsdb", "victim")
        engine.drop_database("itemsdb")
        with pytest.raises(SnapshotError):
            engine.snapshot("victim")
