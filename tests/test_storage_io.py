"""Checksums, data files, the file manager, and sparse files."""

from __future__ import annotations

import pytest

from repro.errors import PageCorruptionError, StorageError
from repro.sim.clock import SimClock
from repro.sim.device import SAS_10K, ZERO_COST, SimDevice
from repro.sim.iostats import IoStats
from repro.storage.checksum import (
    compute_checksum,
    stamp_checksum,
    verify_and_clear_checksum,
)
from repro.storage.datafile import FileManager, MemoryDataFile, OnDiskDataFile
from repro.storage.page import Page, PageType
from repro.storage.sparsefile import SparseFile

PAGE_SIZE = 1024


def formatted_bytes(page_id: int = 3) -> bytearray:
    page = Page(bytearray(PAGE_SIZE))
    page.format(page_id, PageType.BTREE, object_id=9)
    page.insert_record(0, b"payload")
    return page.data


class TestChecksum:
    def test_stamp_and_verify(self):
        data = formatted_bytes()
        stamp_checksum(data)
        verify_and_clear_checksum(data, 3)  # should not raise
        page = Page(data)
        assert page.checksum == 0  # cleared after verify

    def test_corruption_detected(self):
        data = formatted_bytes()
        stamp_checksum(data)
        data[200] ^= 0xFF
        with pytest.raises(PageCorruptionError):
            verify_and_clear_checksum(data, 3)

    def test_all_zero_page_accepted(self):
        verify_and_clear_checksum(bytearray(PAGE_SIZE), 0)

    def test_checksum_field_excluded_from_computation(self):
        data = formatted_bytes()
        before = compute_checksum(data)
        stamp_checksum(data)
        assert compute_checksum(data) == before


class TestMemoryDataFile:
    def test_unwritten_page_reads_zero(self):
        mem = MemoryDataFile(PAGE_SIZE)
        assert bytes(mem.read_page(5)) == bytes(PAGE_SIZE)

    def test_write_read_roundtrip(self):
        mem = MemoryDataFile(PAGE_SIZE)
        data = formatted_bytes()
        mem.write_page(2, bytes(data))
        assert mem.read_page(2) == data

    def test_page_count_tracks_highest(self):
        mem = MemoryDataFile(PAGE_SIZE)
        mem.write_page(9, bytes(PAGE_SIZE))
        assert mem.page_count == 10
        assert mem.size_bytes() == 10 * PAGE_SIZE

    def test_wrong_size_rejected(self):
        mem = MemoryDataFile(PAGE_SIZE)
        with pytest.raises(StorageError):
            mem.write_page(0, b"short")

    def test_negative_page_rejected(self):
        with pytest.raises(StorageError):
            MemoryDataFile(PAGE_SIZE).read_page(-1)

    def test_copy_pages(self):
        mem = MemoryDataFile(PAGE_SIZE)
        mem.write_page(1, bytes(formatted_bytes()))
        pages = mem.copy_pages()
        assert set(pages) == {1}


class TestOnDiskDataFile(object):
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "data.db")
        disk = OnDiskDataFile(path, PAGE_SIZE)
        data = formatted_bytes()
        disk.write_page(4, bytes(data))
        disk.flush()
        assert disk.read_page(4) == data
        assert disk.page_count == 5
        disk.close()

    def test_reopen_preserves(self, tmp_path):
        path = str(tmp_path / "data.db")
        disk = OnDiskDataFile(path, PAGE_SIZE)
        disk.write_page(0, bytes(formatted_bytes(0)))
        disk.flush()
        disk.close()
        again = OnDiskDataFile(path, PAGE_SIZE)
        assert Page(again.read_page(0)).is_formatted()
        again.close()

    def test_short_read_padded(self, tmp_path):
        path = str(tmp_path / "data.db")
        disk = OnDiskDataFile(path, PAGE_SIZE)
        assert bytes(disk.read_page(3)) == bytes(PAGE_SIZE)
        disk.close()


class TestFileManager:
    def _manager(self, profile=ZERO_COST):
        clock = SimClock()
        stats = IoStats()
        return (
            FileManager(MemoryDataFile(PAGE_SIZE), SimDevice(profile, clock, stats), stats),
            clock,
            stats,
        )

    def test_write_stamps_read_verifies(self):
        fm, _clock, stats = self._manager()
        data = formatted_bytes()
        fm.write_page(3, bytes(data))
        out = fm.read_page(3)
        assert out == data  # checksum cleared back to zero
        assert stats.page_reads == 1
        assert stats.page_writes == 1

    def test_io_charges_clock(self):
        fm, clock, _stats = self._manager(SAS_10K)
        fm.write_page(0, bytes(formatted_bytes(0)))
        fm.read_page(0)
        expected = SAS_10K.rand_write_time(PAGE_SIZE) + SAS_10K.rand_read_time(PAGE_SIZE)
        assert clock.now() == pytest.approx(expected)

    def test_corruption_detected_via_manager(self):
        fm, _clock, _stats = self._manager()
        fm.write_page(1, bytes(formatted_bytes(1)))
        fm.datafile._pages[1] = b"\xde" * PAGE_SIZE
        with pytest.raises(PageCorruptionError):
            fm.read_page(1)

    def test_sequential_batches(self):
        fm, clock, stats = self._manager(SAS_10K)
        pages = {i: bytes(formatted_bytes(i)) for i in range(5)}
        fm.write_sequential(pages)
        t_write = clock.now()
        out = fm.read_sequential(list(pages))
        assert len(out) == 5
        assert stats.backup_write_bytes == 5 * PAGE_SIZE
        assert stats.backup_read_bytes == 5 * PAGE_SIZE
        # One streaming charge, not five random ones.
        assert clock.now() - t_write < 5 * SAS_10K.rand_read_time(PAGE_SIZE)

    def test_raw_read_skips_charges(self):
        fm, clock, stats = self._manager(SAS_10K)
        fm.read_page_raw(7)
        assert clock.now() == 0.0
        assert stats.page_reads == 0


class TestSparseFile:
    def test_miss_raises(self):
        sparse = SparseFile(PAGE_SIZE)
        assert 3 not in sparse
        with pytest.raises(StorageError):
            sparse.read(3)

    def test_write_then_read(self):
        sparse = SparseFile(PAGE_SIZE)
        data = bytes(formatted_bytes())
        sparse.write(3, data)
        assert 3 in sparse
        assert bytes(sparse.read(3)) == data

    def test_space_accounting(self):
        sparse = SparseFile(PAGE_SIZE)
        sparse.write(1, bytes(PAGE_SIZE))
        sparse.write(2, bytes(PAGE_SIZE))
        sparse.write(1, bytes(PAGE_SIZE))  # overwrite: no new space
        assert sparse.page_count == 2
        assert sparse.bytes_used() == 2 * PAGE_SIZE

    def test_wrong_size_rejected(self):
        with pytest.raises(StorageError):
            SparseFile(PAGE_SIZE).write(0, b"nope")

    def test_charges_device(self):
        clock = SimClock()
        stats = IoStats()
        device = SimDevice(SAS_10K, clock, stats)
        sparse = SparseFile(PAGE_SIZE, device, stats)
        sparse.write(0, bytes(PAGE_SIZE))
        sparse.read(0)
        assert stats.sparse_writes == 1
        assert stats.sparse_reads == 1
        assert clock.now() > 0

    def test_page_ids_sorted(self):
        sparse = SparseFile(PAGE_SIZE)
        for pid in (5, 1, 3):
            sparse.write(pid, bytes(PAGE_SIZE))
        assert list(sparse.page_ids()) == [1, 3, 5]

    def test_clear(self):
        sparse = SparseFile(PAGE_SIZE)
        sparse.write(1, bytes(PAGE_SIZE))
        sparse.clear()
        assert sparse.page_count == 0
