"""The golden property: as-of snapshots reproduce any recorded history.

A randomized committed history is applied to a table while a shadow model
records the exact logical state after every commit. Then, for every
recorded instant, an as-of snapshot must scan to exactly the shadow state
— across updates, deletes, inserts, rollbacks, page splits, checkpoints,
and drop/recreate cycles.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DatabaseConfig, Engine
from repro.errors import SnapshotError
from tests.conftest import ITEMS_SCHEMA

_txn_op = st.tuples(
    st.sampled_from(["insert", "update", "delete"]),
    st.integers(min_value=0, max_value=60),
    st.integers(min_value=-1000, max_value=1000),
)

_history = st.lists(
    st.tuples(
        st.lists(_txn_op, min_size=1, max_size=8),
        st.booleans(),  # commit?
    ),
    min_size=1,
    max_size=25,
)


def _apply_txn(db, txn, model, ops):
    for op, key, val in ops:
        if op == "insert" and key not in model:
            row = (key, f"k{key}", val)
            db.insert(txn, "items", row)
            model[key] = row
        elif op == "update" and key in model:
            row = db.update(txn, "items", (key,), {"qty": val})
            model[key] = row
        elif op == "delete" and key in model:
            db.delete(txn, "items", (key,))
            del model[key]


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_history)
def test_asof_matches_shadow_model(history):
    engine = Engine(config=DatabaseConfig(page_size=1024, buffer_pool_pages=64))
    db = engine.create_database("prop")
    db.create_table(ITEMS_SCHEMA)
    clock = engine.env.clock

    model: dict[int, tuple] = {}
    recorded: list[tuple[float, dict]] = []
    for index, (ops, commit) in enumerate(history):
        clock.advance(10)
        txn = db.begin()
        staged = dict(model)
        _apply_txn(db, txn, staged, ops)
        if commit:
            db.commit(txn)
            model = staged
        else:
            db.rollback(txn)
        recorded.append((clock.now(), dict(model)))
        if index % 7 == 3:
            db.checkpoint()

    # Live state matches the final model.
    assert {r[0]: r for r in db.scan("items")} == model

    # Every recorded instant is reachable and exact.
    for index, (when, expected) in enumerate(recorded):
        snap = engine.create_asof_snapshot("prop", f"t{index}", when)
        got = {r[0]: r for r in snap.scan("items")}
        assert got == expected, f"instant {index} at {when}"
        engine.drop_snapshot(f"t{index}")


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=60),
)
def test_asof_after_drop_and_churn(rows_before, rows_after):
    """Drop + recreate + refill: the old table remains recoverable."""
    engine = Engine(config=DatabaseConfig(page_size=1024, buffer_pool_pages=64))
    db = engine.create_database("churn")
    db.create_table(ITEMS_SCHEMA)
    clock = engine.env.clock
    with db.transaction() as txn:
        for i in range(rows_before):
            db.insert(txn, "items", (i, f"old-{i}", i))
    clock.advance(10)
    t_good = clock.now()
    clock.advance(10)
    db.drop_table("items")
    db.create_table(ITEMS_SCHEMA)
    with db.transaction() as txn:
        for i in range(rows_after):
            db.insert(txn, "items", (1000 + i, f"new-{i}", i))
    snap = engine.create_asof_snapshot("churn", "past", t_good)
    rows = list(snap.scan("items"))
    assert [r[0] for r in rows] == list(range(rows_before))
    assert sum(1 for _ in db.scan("items")) == rows_after


def test_prepare_page_counters_monotone(engine, items_db):
    """Sanity on the Figure 11 counters: undo work is counted."""
    from tests.conftest import fill_items

    db = items_db
    fill_items(db, 10)
    t0 = db.env.clock.now()
    db.env.clock.advance(5)
    with db.transaction() as txn:
        for i in range(10):
            db.update(txn, "items", (i,), {"qty": i})
    before = db.env.stats.snapshot()
    snap = engine.create_asof_snapshot("itemsdb", "ctr", t0)
    list(snap.scan("items"))
    spent = db.env.stats.delta(before)
    assert spent.pages_prepared_asof > 0
    assert spent.undo_records_applied >= 10
    with pytest.raises(SnapshotError):
        engine.snapshot("nonexistent")
