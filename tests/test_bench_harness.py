"""Fast smoke tests for the benchmark harness (tiny parameters).

The real benchmarks run minutes of simulated workload; these miniatures
guard the harness code paths under the ordinary test suite.
"""

from __future__ import annotations

import json
import os

from repro.bench.harness import (
    run_logging_sweep,
    run_time_travel_experiment,
)
from repro.bench.reporting import ReportTable, save_results
from repro.workload import TpccScale

TINY = TpccScale(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=5,
    items=30,
)


class TestTimeTravelHarness:
    def test_miniature_run(self):
        result = run_time_travel_experiment(
            "ssd",
            workload_minutes=1.0,
            distances_minutes=(0.5,),
            filler_pages=50,
            scale=TINY,
        )
        assert result.profile == "ssd"
        assert result.db_bytes > 0
        assert result.tpm > 0
        assert len(result.points) == 1
        point = result.points[0]
        assert point.asof_total_s > 0
        assert point.restore_s > 0
        assert point.pages_prepared > 0

    def test_distances_beyond_history_skipped(self):
        result = run_time_travel_experiment(
            "ssd",
            workload_minutes=1.0,
            distances_minutes=(0.5, 500.0),
            filler_pages=0,
            scale=TINY,
        )
        assert len(result.points) == 1


class TestLoggingSweepHarness:
    def test_miniature_sweep(self):
        points = run_logging_sweep(
            image_intervals=(0, 2), transactions=60, scale=TINY
        )
        labels = [p.label for p in points]
        assert labels[0] == "baseline (no as-of logging)"
        assert "extensions, N=2" in labels
        by_label = {p.label: p for p in points}
        assert (
            by_label["extensions, N=2"].log_bytes
            > by_label["baseline (no as-of logging)"].log_bytes
        )
        for point in points:
            assert point.tpm > 0
            assert point.log_utilization >= 0


class TestReporting:
    def test_table_rendering(self):
        table = ReportTable("demo", ["name", "value"])
        table.add("alpha", 1.2345)
        table.add("beta", 120000.0)
        table.add("gamma", 0)
        text = table.render()
        assert "== demo ==" in text
        assert "alpha" in text and "1.23" in text
        assert "120,000" in text

    def test_save_results_roundtrip(self, tmp_path, monkeypatch):
        import repro.bench.reporting as reporting

        monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
        path = save_results("unit", {"a": 1, "b": [1, 2]})
        assert os.path.exists(path)
        with open(path) as handle:
            assert json.load(handle) == {"a": 1, "b": [1, 2]}
