"""The asynchronous log-drain model behind Figure 6's flat throughput."""

from __future__ import annotations

import pytest

from repro.config import CostModel, SimEnv
from repro.sim.clock import SimClock
from repro.sim.device import SAS_10K, SLC_SSD, SimDevice
from repro.wal.log_manager import LogManager
from repro.wal.records import BeginRecord, PageImageRecord


class TestAsyncSequentialWrite:
    def test_caller_waits_only_for_submission(self):
        clock = SimClock()
        device = SimDevice(SAS_10K, clock)
        spent = device.write_seq_async(100 << 20)  # 100 MB
        assert spent == pytest.approx(SAS_10K.seq_latency_s)
        assert clock.now() == pytest.approx(SAS_10K.seq_latency_s)

    def test_bandwidth_accrues_as_utilization(self):
        clock = SimClock()
        device = SimDevice(SAS_10K, clock)
        device.write_seq_async(110 << 20)
        # ~110 MB at ~110 MB/s: about a second of busy time, none of it
        # stalling the caller.
        assert device.busy_seconds > 0.9
        assert clock.now() < 0.01

    def test_sync_write_still_blocks(self):
        clock = SimClock()
        device = SimDevice(SAS_10K, clock)
        device.write_seq(110 << 20)
        assert clock.now() > 0.9


class TestLogFlushModel:
    def test_flush_latency_independent_of_volume(self):
        """Group commit: a big flush costs the same caller latency as a
        small one — the paper's record-count-not-size observation."""
        times = {}
        for label, payload in (("small", b"x" * 10), ("large", b"x" * 60000)):
            env = SimEnv(log_profile=SLC_SSD, cost=CostModel.free())
            log = LogManager(env)
            log.append(PageImageRecord(image=payload, page_id=1))
            t0 = env.clock.now()
            log.flush()
            times[label] = env.clock.now() - t0
        assert times["small"] == pytest.approx(times["large"])

    def test_utilization_scales_with_volume(self):
        env = SimEnv(log_profile=SLC_SSD, cost=CostModel.free())
        log = LogManager(env)
        for _ in range(20):
            log.append(PageImageRecord(image=b"i" * 8192, page_id=1))
        log.flush()
        assert env.log_device.busy_seconds > 8192 * 20 / SLC_SSD.seq_write_bw * 0.9

    def test_durability_unaffected_by_async_model(self):
        env = SimEnv(log_profile=SAS_10K, cost=CostModel.free())
        log = LogManager(env)
        lsn = log.append(BeginRecord(txn_id=1))
        log.flush()
        log.append(BeginRecord(txn_id=2))
        log.crash()
        survivors = list(log.scan(lsn, stop_on_torn_tail=True))
        assert [r.txn_id for r in survivors] == [1]
