"""PreparePageAsOf tests: chain walking, images, preformat, failure modes."""

from __future__ import annotations

import pytest

from repro import DatabaseConfig, Engine
from repro.core.page_undo import prepare_page_as_of
from repro.errors import LogTruncatedError
from repro.storage.page import Page
from tests.conftest import ITEMS_SCHEMA, fill_items


def leaf_page_id(db, table="items"):
    """Page id of the (single) leaf of a small table."""
    tree = db.table(table).accessor
    pids = tree.page_ids()
    assert len(pids) == 1
    return pids[0]


def page_copy(db, pid) -> Page:
    with db.fetch_page(pid) as guard:
        return Page(bytearray(guard.page.data))


def rows_on(page, codec):
    return [codec.decode(payload) for payload in page.records()]


class TestBasicRewind:
    def test_rewind_across_updates(self, items_db):
        db = items_db
        fill_items(db, 5)
        lsn_before = db.log.end_lsn - 1
        with db.transaction() as txn:
            db.update(txn, "items", (2,), {"qty": 999})
            db.update(txn, "items", (2,), {"qty": 1000})
        pid = leaf_page_id(db)
        codec = db.table("items").accessor.codec
        page = page_copy(db, pid)
        prepare_page_as_of(page, lsn_before, db.log, db.env)
        rows = rows_on(page, codec)
        assert rows[2] == (2, "item-2", 20)

    def test_rewind_to_now_is_noop(self, items_db):
        db = items_db
        fill_items(db, 5)
        pid = leaf_page_id(db)
        page = page_copy(db, pid)
        before = page.clone_bytes()
        prepare_page_as_of(page, db.log.end_lsn, db.log, db.env)
        assert page.clone_bytes() == before

    def test_rewind_before_creation_empties_page(self, items_db):
        db = items_db
        fill_items(db, 5)
        pid = leaf_page_id(db)
        page = page_copy(db, pid)
        prepare_page_as_of(page, 1, db.log, db.env)
        assert not page.is_formatted()

    def test_rewind_across_insert_delete_mix(self, items_db):
        db = items_db
        fill_items(db, 5)
        mid = db.log.end_lsn - 1
        with db.transaction() as txn:
            db.delete(txn, "items", (1,))
            db.delete(txn, "items", (3,))
            db.insert(txn, "items", (7, "seven", 70))
        pid = leaf_page_id(db)
        codec = db.table("items").accessor.codec
        page = page_copy(db, pid)
        prepare_page_as_of(page, mid, db.log, db.env)
        keys = [r[0] for r in rows_on(page, codec)]
        assert keys == [0, 1, 2, 3, 4]

    def test_rewind_through_rollback_clrs(self, items_db):
        """The section 4.2 CLR extension: page undo crosses a rollback."""
        db = items_db
        fill_items(db, 5)
        mid = db.log.end_lsn - 1
        txn = db.begin()
        db.update(txn, "items", (0,), {"qty": -1})
        db.insert(txn, "items", (9, "nine", 90))
        db.rollback(txn)
        with db.transaction() as txn:
            db.update(txn, "items", (4,), {"qty": 4444})
        pid = leaf_page_id(db)
        codec = db.table("items").accessor.codec
        page = page_copy(db, pid)
        prepare_page_as_of(page, mid, db.log, db.env)
        rows = rows_on(page, codec)
        assert rows[0] == (0, "item-0", 0)
        assert rows[4] == (4, "item-4", 40)
        assert len(rows) == 5

    def test_intermediate_points_all_reachable(self, items_db):
        """Every historical LSN yields the exact historical page content."""
        db = items_db
        codec = db.table("items").accessor.codec
        history = []
        expected = {}
        for i in range(12):
            with db.transaction() as txn:
                db.insert(txn, "items", (i, f"v{i}", i))
            history.append(db.log.end_lsn - 1)
            expected[history[-1]] = [(j, f"v{j}", j) for j in range(i + 1)]
        pid = leaf_page_id(db)
        for lsn in history:
            page = page_copy(db, pid)
            prepare_page_as_of(page, lsn, db.log, db.env)
            assert rows_on(page, codec) == expected[lsn]


class TestPageImages:
    def _engine(self, interval):
        config = DatabaseConfig().with_extensions(page_image_interval=interval)
        engine = Engine(config=config)
        db = engine.create_database("imgdb")
        db.create_table(ITEMS_SCHEMA)
        return db

    def test_images_emitted(self):
        db = self._engine(4)
        fill_items(db, 20)
        assert db.env.stats.page_image_records > 0

    def test_rewind_with_images_matches_without(self):
        db_img = self._engine(4)
        db_raw = self._engine(0)
        marks = {}
        for db, tag in ((db_img, "img"), (db_raw, "raw")):
            fill_items(db, 3)
            marks[tag] = db.log.end_lsn - 1
            with db.transaction() as txn:
                for i in range(30):
                    db.update(txn, "items", (1,), {"qty": i})
        for db, tag in ((db_img, "img"), (db_raw, "raw")):
            pid = leaf_page_id(db)
            codec = db.table("items").accessor.codec
            page = page_copy(db, pid)
            prepare_page_as_of(page, marks[tag], db.log, db.env)
            assert rows_on(page, codec)[1] == (1, "item-1", 10)

    def test_images_reduce_undo_work(self):
        db_img = self._engine(4)
        db_raw = self._engine(0)
        for db in (db_img, db_raw):
            fill_items(db, 3)
        marks = {}
        for db, tag in ((db_img, "img"), (db_raw, "raw")):
            marks[tag] = db.log.end_lsn - 1
            with db.transaction() as txn:
                for i in range(100):
                    db.update(txn, "items", (1,), {"qty": i})
        counts = {}
        for db, tag in ((db_img, "img"), (db_raw, "raw")):
            before = db.env.stats.snapshot()
            page = page_copy(db, leaf_page_id(db))
            prepare_page_as_of(page, marks[tag], db.log, db.env)
            counts[tag] = db.env.stats.delta(before).undo_records_applied
        assert counts["img"] < counts["raw"] / 3
        assert db_img.env.stats.undo_images_applied >= 1

    def test_image_fast_path_can_be_disabled(self):
        db = self._engine(4)
        fill_items(db, 3)
        mark = db.log.end_lsn - 1
        with db.transaction() as txn:
            for i in range(40):
                db.update(txn, "items", (1,), {"qty": i})
        pid = leaf_page_id(db)
        codec = db.table("items").accessor.codec
        page = page_copy(db, pid)
        prepare_page_as_of(page, mark, db.log, db.env, use_images=False)
        assert rows_on(page, codec)[1] == (1, "item-1", 10)


class TestFailureModes:
    def test_truncated_chain_raises(self, items_db):
        db = items_db
        fill_items(db, 5)
        mark = db.log.end_lsn - 1
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 1})
        db.checkpoint()
        db.log.truncate_before(db.last_checkpoint_lsn)
        page = page_copy(db, leaf_page_id(db))
        with pytest.raises(LogTruncatedError):
            prepare_page_as_of(page, mark, db.log, db.env)
        del mark

    def test_smo_delete_without_extension_derives_from_pair(self):
        """Extension off: undo still works via pair_lsn derivation, at the
        cost of extra log reads (the paper's rejected alternative)."""
        config = DatabaseConfig(page_size=1024, buffer_pool_pages=64).with_extensions(
            smo_delete_undo_info=False
        )
        engine = Engine(config=config)
        db = engine.create_database("noext")
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 30)
        mark = db.log.end_lsn - 1
        fill_items(db, 300, start=30)  # forces splits: SMO deletes w/o rows
        tree = db.table("items").accessor
        codec = tree.codec
        recovered = []
        for pid in tree.page_ids():
            with db.fetch_page(pid) as guard:
                page = Page(bytearray(guard.page.data))
            prepare_page_as_of(page, mark, db.log, db.env)
            # Filter on the *as-of* shape: pages that were leaves back then
            # (today's root may be interior; today's leaves may not have
            # existed yet).
            if page.is_formatted() and page.level == 0 and page.object_id == tree.object_id:
                recovered.extend(r[0] for r in rows_on(page, codec))
        assert set(recovered) == set(range(30))
