"""Chain restore correctness under TPC-C churn.

The satellite's contract: full + 2 incrementals + archived log, restored
at three different times, must (a) match the live ``AS OF`` view wherever
both mechanisms can reach, (b) pass ``checkdb`` on every restored copy,
and (c) keep working after the primary's retention window has closed —
where only the archive can still serve the time.
"""

from __future__ import annotations

import pytest

from repro.errors import RetentionExceededError
from repro.tools import check_database
from repro.workload import TpccDriver, TpccScale, load_tpcc

SCALE = TpccScale(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=6,
    items=30,
)


@pytest.fixture
def churned(engine):
    """TPC-C primary with a full + 2 incrementals and a mark in each era."""
    db = engine.create_database("tpcc")
    load_tpcc(db, SCALE, seed=11)
    driver = TpccDriver(db, SCALE, seed=11, think_time_s=0.05)
    driver.pump = engine.replication_tick
    engine.backup_database("tpcc")
    marks = []
    for _round in range(3):
        driver.run_transactions(40)
        db.env.clock.advance(1)
        marks.append(db.env.clock.now())
        db.env.clock.advance(1)
        if _round < 2:
            engine.backup_database("tpcc")
    driver.run_transactions(10)
    db.log.flush()
    engine.archives["tpcc"].poll()
    return db, driver, marks


def _tables_equal(a, b) -> None:
    assert sorted(a.tables()) == sorted(b.tables())
    for table in a.tables():
        assert list(a.scan(table)) == list(b.scan(table)), table


class TestChainRestoreCorrectness:
    def test_restores_match_live_asof_and_pass_checkdb(self, engine, churned):
        db, _driver, marks = churned
        chain = engine.archives["tpcc"].store.newest_chain("tpcc")
        assert len(chain) == 3  # full + 2 incrementals
        for mark in marks:
            restored = engine.restore_from_archive("tpcc", mark)
            with engine.query_as_of("tpcc", mark) as snap:
                _tables_equal(restored, snap)
            report = check_database(restored)
            assert report.ok, report.problems
            engine.drop_database(restored.name)

    def test_restore_outlives_the_retention_window(self, engine, churned):
        db, _driver, marks = churned
        db.set_undo_interval(1.0)
        db.env.clock.advance(30)
        db.checkpoint()
        db.env.clock.advance(30)
        db.checkpoint()
        db.enforce_retention()
        with pytest.raises(RetentionExceededError):
            engine.snapshot_pool.acquire(db, marks[0])
        restored = engine.restore_from_archive("tpcc", marks[0])
        report = check_database(restored)
        assert report.ok, report.problems
        # The archive-backed query_as_of fallback serves the same state.
        with engine.query_as_of("tpcc", marks[0]) as reader:
            _tables_equal(restored, reader)

    def test_seeded_replica_under_churn(self, engine, churned):
        db, driver, _marks = churned
        db.set_undo_interval(1.0)
        db.env.clock.advance(30)
        db.checkpoint()
        db.env.clock.advance(30)
        db.checkpoint()
        db.enforce_retention()
        replica = engine.add_replica("tpcc", "standby", seed_from_backup=True)
        driver.run_transactions(30)
        db.log.flush()
        engine.replication_tick()
        assert replica.lag_bytes() == 0
        _tables_equal(replica, db)
        report = check_database(replica.db)
        assert report.ok, report.problems
