"""Row/key codec tests: schema validation and round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.schema import Column, ColumnType, TableSchema
from repro.errors import StorageError
from repro.storage.rowcodec import KeyCodec, RowCodec


def make_schema() -> TableSchema:
    return TableSchema(
        "t",
        (
            Column("i", ColumnType.INT),
            Column("f", ColumnType.FLOAT),
            Column("s", ColumnType.STR, max_len=100, nullable=True),
            Column("b", ColumnType.BOOL),
            Column("raw", ColumnType.BYTES, max_len=100, nullable=True),
        ),
        key=("i",),
    )


class TestSchemaValidation:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            TableSchema(
                "t",
                (Column("a", ColumnType.INT), Column("a", ColumnType.INT)),
                key=("a",),
            )

    def test_missing_key_column_rejected(self):
        with pytest.raises(ValueError):
            TableSchema("t", (Column("a", ColumnType.INT),), key=("b",))

    def test_nullable_key_rejected(self):
        with pytest.raises(ValueError):
            TableSchema(
                "t",
                (Column("a", ColumnType.INT, nullable=True),),
                key=("a",),
            )

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            TableSchema("t", (Column("a", ColumnType.INT),), key=())

    def test_repeated_key_rejected(self):
        with pytest.raises(ValueError):
            TableSchema(
                "t",
                (Column("a", ColumnType.INT), Column("b", ColumnType.INT)),
                key=("a", "a"),
            )

    def test_key_positions(self):
        schema = TableSchema(
            "t",
            (
                Column("a", ColumnType.INT),
                Column("b", ColumnType.STR),
                Column("c", ColumnType.INT),
            ),
            key=("c", "a"),
        )
        assert schema.key_positions == (2, 0)
        assert schema.key_of((1, "x", 3)) == (3, 1)

    def test_row_from_dict_defaults_nullable(self):
        schema = make_schema()
        row = schema.row_from_dict({"i": 1, "f": 2.0, "b": True})
        assert row == (1, 2.0, None, True, None)

    def test_row_from_dict_missing_required(self):
        schema = make_schema()
        with pytest.raises(ValueError):
            schema.row_from_dict({"i": 1})

    def test_row_from_dict_unknown_column(self):
        schema = make_schema()
        with pytest.raises(ValueError):
            schema.row_from_dict({"i": 1, "f": 1.0, "b": False, "zzz": 2})

    def test_check_row_arity(self):
        with pytest.raises(ValueError):
            make_schema().check_row((1, 2.0))

    def test_bool_not_accepted_as_int(self):
        with pytest.raises(TypeError):
            make_schema().check_row((True, 1.0, None, False, None))

    def test_int_accepted_as_float(self):
        make_schema().check_row((1, 2, None, False, None))

    def test_string_too_long(self):
        with pytest.raises(ValueError):
            make_schema().check_row((1, 1.0, "x" * 101, False, None))

    def test_int_out_of_range(self):
        with pytest.raises(ValueError):
            make_schema().check_row((2**63, 1.0, None, False, None))


class TestRowCodec:
    def test_roundtrip_simple(self):
        codec = RowCodec(make_schema())
        row = (42, 3.25, "hello", True, b"\x00\xff")
        assert codec.decode(codec.encode(row)) == row

    def test_roundtrip_nulls(self):
        codec = RowCodec(make_schema())
        row = (1, -0.5, None, False, None)
        assert codec.decode(codec.encode(row)) == row

    def test_roundtrip_unicode(self):
        codec = RowCodec(make_schema())
        row = (7, 0.0, "héllo wörld ☃", True, b"")
        assert codec.decode(codec.encode(row)) == row

    def test_decode_key(self):
        codec = RowCodec(make_schema())
        payload = codec.encode((99, 1.0, "a", False, None))
        assert codec.decode_key(payload) == (99,)

    def test_short_payload_rejected(self):
        codec = RowCodec(make_schema())
        with pytest.raises(StorageError):
            codec.decode(b"")

    def test_int_as_float_column_roundtrip(self):
        codec = RowCodec(make_schema())
        decoded = codec.decode(codec.encode((1, 5, None, False, None)))
        assert decoded[1] == 5.0
        assert isinstance(decoded[1], float)


class TestKeyCodec:
    def test_roundtrip_composite(self):
        codec = KeyCodec((ColumnType.INT, ColumnType.STR))
        key = (12, "abc")
        assert codec.decode(codec.encode(key)) == key

    def test_for_schema(self):
        schema = TableSchema(
            "t",
            (
                Column("a", ColumnType.INT),
                Column("b", ColumnType.STR),
            ),
            key=("b", "a"),
        )
        codec = KeyCodec.for_schema(schema)
        assert codec.decode(codec.encode(("x", 1))) == ("x", 1)

    def test_arity_mismatch(self):
        codec = KeyCodec((ColumnType.INT,))
        with pytest.raises(StorageError):
            codec.encode((1, 2))

    def test_null_key_rejected(self):
        codec = KeyCodec((ColumnType.INT,))
        with pytest.raises(StorageError):
            codec.encode((None,))


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------

_row_strategy = st.tuples(
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    st.one_of(st.none(), st.text(max_size=30)),
    st.booleans(),
    st.one_of(st.none(), st.binary(max_size=30)),
)


@settings(max_examples=300, deadline=None)
@given(_row_strategy)
def test_codec_roundtrip_property(row):
    schema = TableSchema(
        "p",
        (
            Column("i", ColumnType.INT),
            Column("f", ColumnType.FLOAT),
            Column("s", ColumnType.STR, max_len=200, nullable=True),
            Column("b", ColumnType.BOOL),
            Column("raw", ColumnType.BYTES, max_len=200, nullable=True),
        ),
        key=("i",),
    )
    codec = RowCodec(schema)
    assert codec.decode(codec.encode(row)) == row


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=-(2**62), max_value=2**62),
    st.text(max_size=20),
)
def test_key_codec_roundtrip_property(num, text):
    codec = KeyCodec((ColumnType.INT, ColumnType.STR))
    assert codec.decode(codec.encode((num, text))) == (num, text)
