"""SplitLSN search and retention enforcement tests."""

from __future__ import annotations

import pytest

from repro.core.retention import enforce_retention, retention_horizon
from repro.core.split_lsn import checkpoint_chain, find_split_lsn
from repro.errors import RetentionExceededError
from repro.wal.records import CommitRecord
from tests.conftest import fill_items


def committed_marks(db, count, gap_s=10.0, start=0):
    """Commit one row per step, returning [(wall_time, key)] marks."""
    marks = []
    for i in range(start, start + count):
        db.env.clock.advance(gap_s)
        with db.transaction() as txn:
            db.insert(txn, "items", (i, f"t{i}", i))
        marks.append((db.env.clock.now(), i))
    return marks


class TestSplitSearch:
    def test_split_is_last_commit_at_or_before(self, items_db):
        db = items_db
        marks = committed_marks(db, 5)
        target = marks[2][0] + 1.0  # between commits 2 and 3
        split = find_split_lsn(db, target)
        rec = db.log.read(split)
        assert isinstance(rec, CommitRecord)
        assert rec.wall_clock <= target
        # Every commit after the split record is after the target.
        later = [
            r for r in db.log.scan(split)
            if isinstance(r, CommitRecord) and r.lsn > split
        ]
        assert later
        assert all(r.wall_clock > target for r in later)

    def test_exact_commit_time_included(self, items_db):
        db = items_db
        marks = committed_marks(db, 3)
        split = find_split_lsn(db, marks[1][0])
        rec = db.log.read(split)
        assert isinstance(rec, CommitRecord)
        assert rec.wall_clock == pytest.approx(marks[1][0])

    def test_future_target_means_now(self, items_db):
        db = items_db
        committed_marks(db, 2)
        split = find_split_lsn(db, db.env.clock.now() + 100)
        # The split must be a readable record LSN (not a raw byte offset
        # into the middle of the last record) — and the last commit.
        rec = db.log.read(split)
        assert isinstance(rec, CommitRecord)
        assert not [
            r for r in db.log.scan(split)
            if isinstance(r, CommitRecord) and r.lsn > split
        ]

    def test_now_split_tracked_without_log_scan(self, items_db):
        """The common "as of now" path is O(1): the log manager tracks the
        last commit LSN at append time."""
        db = items_db
        committed_marks(db, 3)
        assert db.log.last_commit_lsn != 0
        split = find_split_lsn(db, db.env.clock.now() + 1)
        assert split == db.log.last_commit_lsn
        rec = db.log.read(split)
        assert isinstance(rec, CommitRecord)

    def test_now_split_survives_crash_tracker_reset(self, items_db):
        """After a crash discards the volatile tail the tracker resets;
        the scan fallback still finds a readable commit LSN."""
        db = items_db
        committed_marks(db, 2)
        db.log.flush()
        # A commit stuck in the volatile tail (never flushed), as a torn
        # group commit would leave it.
        db.log.append(CommitRecord(wall_clock=db.env.clock.now(), txn_id=999))
        db.log.crash()
        assert db.log.last_commit_lsn == 0  # NULL: tracker was reset
        split = find_split_lsn(db, db.env.clock.now() + 1)
        rec = db.log.read(split)
        assert isinstance(rec, CommitRecord)

    def test_now_split_readable_without_checkpoint_narrowing(self, items_db):
        """Regression: "as of now" used to return end_lsn - 1, which is not
        a record boundary; log.read on the result must always succeed."""
        db = items_db
        committed_marks(db, 3)
        db.checkpoint()  # tail after the last checkpoint holds no commit
        split = find_split_lsn(db, db.env.clock.now())
        rec = db.log.read(split)
        assert isinstance(rec, CommitRecord)

    def test_checkpoint_narrowing_used(self, items_db):
        db = items_db
        committed_marks(db, 3)
        db.checkpoint()
        committed_marks(db, 3, start=3)
        db.checkpoint()
        marks = committed_marks(db, 3, start=6)
        target = marks[0][0]
        split = find_split_lsn(db, target)
        # The found split must be after the latest checkpoint before it.
        assert split > db.last_checkpoint_lsn or split > 0

    def test_checkpoint_chain_order(self, items_db):
        db = items_db
        lsns = [db.checkpoint() for _ in range(3)]
        chain = [lsn for lsn, _wall, _prev in checkpoint_chain(db)]
        assert chain[: len(lsns)] == list(reversed(lsns))

    def test_target_before_history_raises(self, items_db):
        db = items_db
        db.env.clock.advance(1000)
        committed_marks(db, 2)
        db.checkpoint()
        db.enforce_retention()
        with pytest.raises(RetentionExceededError):
            find_split_lsn(db, -500.0)


class TestRetention:
    def test_horizon_tracks_interval(self, items_db):
        db = items_db
        db.set_undo_interval(100)
        db.env.clock.advance(500)
        assert retention_horizon(db) == pytest.approx(db.env.clock.now() - 100)

    def test_enforcement_truncates_old_log(self, items_db):
        db = items_db
        db.set_undo_interval(50)
        fill_items(db, 20)
        db.checkpoint()
        db.env.clock.advance(200)  # history now far outside retention
        fill_items(db, 20, start=20)
        db.checkpoint()
        start_before = db.log.start_lsn
        enforce_retention(db)
        assert db.log.start_lsn > start_before

    def test_enforcement_keeps_recent_log(self, items_db):
        db = items_db
        db.set_undo_interval(1_000_000)
        fill_items(db, 20)
        db.checkpoint()
        start_before = db.log.start_lsn
        enforce_retention(db)
        assert db.log.start_lsn == start_before

    def test_active_txn_pins_log(self, items_db):
        db = items_db
        db.set_undo_interval(10)
        txn = db.begin()
        db.insert(txn, "items", (1, "held", 1))
        first = txn.first_lsn
        db.env.clock.advance(1000)
        db.checkpoint()
        db.env.clock.advance(1000)
        db.checkpoint()
        enforce_retention(db)
        assert db.log.start_lsn <= first
        db.rollback(txn)

    def test_asof_within_retention_succeeds_after_enforcement(self, engine, items_db):
        db = items_db
        db.set_undo_interval(300)
        fill_items(db, 5)
        db.env.clock.advance(100)
        mark = db.env.clock.now()
        db.env.clock.advance(1)  # the oops happens strictly after the mark
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 777})
        db.env.clock.advance(100)
        db.checkpoint()
        enforce_retention(db)
        snap = engine.create_asof_snapshot("itemsdb", "ok", mark)
        assert snap.get("items", (1,))[2] == 10

    def test_asof_outside_retention_rejected(self, engine, items_db):
        db = items_db
        db.set_undo_interval(50)
        fill_items(db, 5)
        mark = db.env.clock.now()
        db.env.clock.advance(500)
        with pytest.raises(RetentionExceededError):
            engine.create_asof_snapshot("itemsdb", "tooold", mark)
