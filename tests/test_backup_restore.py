"""Backup and point-in-time restore tests."""

from __future__ import annotations

import pytest

from repro.backup import FullBackup, restore_point_in_time, take_full_backup
from repro.errors import BackupError, SnapshotReadOnlyError
from tests.conftest import fill_items


class TestFullBackup:
    def test_backup_contains_all_allocated_pages(self, items_db):
        fill_items(items_db, 50)
        backup = take_full_backup(items_db)
        assert set(items_db.alloc.allocated_page_ids()) == set(backup.pages)
        assert backup.backup_lsn == items_db.last_checkpoint_lsn
        assert backup.size_bytes == len(backup.pages) * items_db.config.page_size

    def test_backup_charges_streaming_io(self, items_db):
        fill_items(items_db, 50)
        before = items_db.env.stats.snapshot()
        take_full_backup(items_db)
        spent = items_db.env.stats.delta(before)
        assert spent.backup_read_bytes > 0
        assert spent.backup_write_bytes >= spent.backup_read_bytes


class TestRestore:
    def _scenario(self, engine, items_db):
        """Backup, then three timestamped generations of changes."""
        db = items_db
        fill_items(db, 20)
        backup = take_full_backup(db)
        marks = []
        for gen in range(3):
            db.env.clock.advance(10)
            with db.transaction() as txn:
                db.update(txn, "items", (1,), {"qty": 1000 + gen})
                db.insert(txn, "items", (100 + gen, f"gen{gen}", gen))
            marks.append(db.env.clock.now())
            db.env.clock.advance(10)
        return backup, marks

    def test_restore_to_each_generation(self, engine, items_db):
        backup, marks = self._scenario(engine, items_db)
        for gen, when in enumerate(marks):
            restored = restore_point_in_time(
                engine, backup, items_db, when, f"restored{gen}"
            )
            assert restored.get("items", (1,))[2] == 1000 + gen
            present = {r[0] for r in restored.scan("items")}
            assert {100 + g for g in range(gen + 1)}.issubset(present)
            assert 100 + gen + 1 not in present

    def test_restored_is_read_only(self, engine, items_db):
        backup, marks = self._scenario(engine, items_db)
        restored = restore_point_in_time(engine, backup, items_db, marks[0], "ro")
        with pytest.raises(SnapshotReadOnlyError):
            restored.begin()

    def test_restore_undoes_in_flight(self, engine, items_db):
        db = items_db
        fill_items(db, 10)
        backup = take_full_backup(db)
        straddler = db.begin()
        db.update(straddler, "items", (2,), {"qty": -2})
        anchor = db.begin()
        db.insert(anchor, "items", (50, "anchor", 0))
        db.commit(anchor)
        mark = db.env.clock.now()
        db.env.clock.advance(5)
        db.commit(straddler)
        restored = restore_point_in_time(engine, backup, db, mark, "mid")
        assert restored.get("items", (2,))[2] == 20
        assert restored.get("items", (50,)) is not None

    def test_restore_before_backup_rejected(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        db.env.clock.advance(100)
        backup = take_full_backup(db)
        with pytest.raises(BackupError):
            restore_point_in_time(engine, backup, db, 1.0, "early")

    def test_restore_with_truncated_log_rejected(self, engine, items_db):
        db = items_db
        db.set_undo_interval(10)
        fill_items(db, 5)
        backup = take_full_backup(db)
        db.env.clock.advance(1000)
        db.checkpoint()
        db.env.clock.advance(1000)
        db.checkpoint()
        db.enforce_retention()
        assert db.log.start_lsn > backup.backup_lsn
        with pytest.raises(BackupError):
            restore_point_in_time(
                engine, backup, db, db.env.clock.now(), "broken"
            )

    def test_restore_and_asof_agree(self, engine, items_db):
        """The two time-travel mechanisms must produce identical data."""
        db = items_db
        fill_items(db, 30)
        backup = take_full_backup(db)
        db.env.clock.advance(10)
        with db.transaction() as txn:
            for i in range(15):
                db.update(txn, "items", (i,), {"qty": -i})
        mark = db.env.clock.now()
        db.env.clock.advance(10)
        with db.transaction() as txn:
            for i in range(30):
                db.delete(txn, "items", (i,))
        restored = restore_point_in_time(engine, backup, db, mark, "agree")
        snap = engine.create_asof_snapshot("itemsdb", "agree_snap", mark)
        assert list(restored.scan("items")) == list(snap.scan("items"))

    def test_restore_preserves_structure_after_splits(self, engine, small_db):
        from tests.conftest import ITEMS_SCHEMA

        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 50)
        backup = take_full_backup(db)
        db.env.clock.advance(5)
        fill_items(db, 400, start=50)  # splits after the backup
        mark = db.env.clock.now()
        db.env.clock.advance(5)
        fill_items(db, 100, start=450)
        restored = restore_point_in_time(engine, backup, db, mark, "grown")
        assert [r[0] for r in restored.scan("items")] == list(range(450))

    def test_backup_repr(self, items_db):
        fill_items(items_db, 5)
        backup = take_full_backup(items_db)
        assert isinstance(backup, FullBackup)
        assert "FullBackup" in repr(backup)
