"""Snapshot pool tests: reuse, refcounting, eviction, engine integration."""

from __future__ import annotations

import pytest

from repro.core.snapshot_pool import SnapshotPool
from repro.errors import (
    CatalogError,
    RetentionExceededError,
    SnapshotError,
)
from tests.conftest import fill_items


def mark(db) -> float:
    now = db.env.clock.now()
    db.env.clock.advance(10)
    return now


class TestReuse:
    def test_same_point_shares_one_snapshot(self, engine, items_db):
        db = items_db
        fill_items(db, 10)
        t0 = mark(db)
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 999})
        pool = engine.snapshot_pool
        first = pool.acquire(db, t0)
        assert first.get("items", (1,))[2] == 10
        pool.release(first)
        bytes_after_first = pool.total_bytes()
        second = pool.acquire(db, t0)
        assert second is first  # same pooled snapshot, same side file
        assert second.get("items", (1,))[2] == 10
        pool.release(second)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        # The second query created no new side file and prepared no new
        # pages for this point lookup.
        assert pool.total_bytes() == bytes_after_first
        assert len(pool) == 1

    def test_distinct_times_resolving_to_same_split_share(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        t0 = mark(db)  # advances the clock by 10s with no commits between
        t_later = t0 + 5.0
        pool = engine.snapshot_pool
        with pool.lease(db, t0):
            pass
        with pool.lease(db, t_later):
            pass
        # Both times land on the same last commit, hence one SplitLSN.
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1

    def test_distinct_points_get_distinct_snapshots(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        t0 = mark(db)
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 111})
        t1 = mark(db)
        pool = engine.snapshot_pool
        with pool.lease(db, t0) as s0, pool.lease(db, t1) as s1:
            assert s0 is not s1
            assert s0.get("items", (1,))[2] == 10
            assert s1.get("items", (1,))[2] == 111
        assert pool.stats.misses == 2

    def test_retention_window_enforced(self, engine, items_db):
        db = items_db
        db.set_undo_interval(50)
        fill_items(db, 5)
        old = db.env.clock.now()
        db.env.clock.advance(500)
        with pytest.raises(RetentionExceededError):
            engine.snapshot_pool.acquire(db, old)


class TestRefcounting:
    def test_active_lease_never_evicted(self, engine, items_db):
        db = items_db
        fill_items(db, 10)
        t0 = mark(db)
        pool = engine.snapshot_pool
        snap = pool.acquire(db, t0)
        list(snap.scan("items"))  # materialize side-file pages
        assert pool.total_bytes() > 0
        pool.set_budget(1)  # far below the side-file footprint
        assert pool.evict_to_budget() == 0  # leased: must not be evicted
        assert not snap.dropped
        pool.release(snap)  # release triggers eviction under budget
        assert pool.stats.evictions == 1
        assert snap.dropped
        assert len(pool) == 0

    def test_concurrent_sessions_share_a_lease(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        t0 = mark(db)
        pool = engine.snapshot_pool
        a = pool.acquire(db, t0)
        b = pool.acquire(db, t0)
        assert a is b
        assert pool.active_leases() == 2
        pool.release(a)
        assert pool.active_leases() == 1
        pool.release(b)
        assert pool.active_leases() == 0

    def test_double_release_rejected(self, engine, items_db):
        db = items_db
        fill_items(db, 3)
        t0 = mark(db)
        pool = engine.snapshot_pool
        snap = pool.acquire(db, t0)
        pool.release(snap)
        with pytest.raises(SnapshotError):
            pool.release(snap)

    def test_foreign_snapshot_release_rejected(self, engine, items_db):
        db = items_db
        fill_items(db, 3)
        t0 = mark(db)
        named = engine.create_asof_snapshot("itemsdb", "named", t0)
        with pytest.raises(SnapshotError):
            engine.snapshot_pool.release(named)


class TestEviction:
    def _points(self, db, count):
        """Commit a distinct state per point so splits differ."""
        points = []
        for i in range(count):
            with db.transaction() as txn:
                db.update(txn, "items", (1,), {"qty": 1000 + i})
            points.append(mark(db))
        return points

    def test_lru_eviction_under_byte_budget(self, engine, items_db):
        db = items_db
        fill_items(db, 10)
        pool = engine.snapshot_pool
        points = self._points(db, 4)
        page = db.config.page_size
        for t in points:
            with pool.lease(db, t) as snap:
                snap.get("items", (1,))  # materialize a few pages
        per_snap = pool.total_bytes() // len(points)
        assert per_snap > 0
        # Budget for roughly two snapshots: the two oldest must go.
        pool.set_budget(2 * per_snap + page - 1)
        assert pool.total_bytes() <= pool.budget_bytes
        assert len(pool) <= 2
        assert pool.stats.evictions >= 2
        # The most recently used point survived.
        with pool.lease(db, points[-1]):
            pass
        assert pool.stats.misses == len(points)  # no re-creation needed

    def test_acquire_refreshes_lru_position(self, engine, items_db):
        db = items_db
        fill_items(db, 10)
        pool = engine.snapshot_pool
        points = self._points(db, 3)
        for t in points:
            with pool.lease(db, t) as snap:
                snap.get("items", (1,))
        # Touch the oldest point again: it becomes most-recently-used.
        with pool.lease(db, points[0]):
            pass
        sizes = [entry[3] for entry in pool.entries()]
        pool.set_budget(max(sizes))
        with pool.lease(db, points[0]):
            pass
        assert pool.stats.misses == len(points)  # oldest survived the purge

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            SnapshotPool(0)
        pool = SnapshotPool(100)
        with pytest.raises(ValueError):
            pool.set_budget(-5)


class TestEngineIntegration:
    def test_query_as_of_context_manager(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        t0 = mark(db)
        with db.transaction() as txn:
            db.delete(txn, "items", (0,))
        with engine.query_as_of("itemsdb", t0) as snap:
            assert snap.get("items", (0,)) == (0, "item-0", 0)
        assert engine.snapshot_pool.active_leases() == 0
        # Pooled snapshots never appear in the named-snapshot namespace.
        assert not engine.snapshots
        assert not db.snapshots

    def test_query_as_of_unknown_database(self, engine):
        with pytest.raises(CatalogError):
            with engine.query_as_of("ghost", 0.0):
                pass

    def test_lease_released_on_error(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        t0 = mark(db)
        with pytest.raises(RuntimeError):
            with engine.query_as_of("itemsdb", t0):
                raise RuntimeError("boom")
        assert engine.snapshot_pool.active_leases() == 0

    def test_drop_database_purges_pool(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        t0 = mark(db)
        with engine.query_as_of("itemsdb", t0) as snap:
            snap.get("items", (1,))
        assert len(engine.snapshot_pool) == 1
        engine.drop_database("itemsdb")
        assert len(engine.snapshot_pool) == 0

    def test_drop_database_mid_lease_releases_cleanly(self, engine, items_db):
        """Purging a database must not make the outstanding lease's
        release blow up (or mask an in-flight exception)."""
        db = items_db
        fill_items(db, 5)
        t0 = mark(db)
        with engine.query_as_of("itemsdb", t0) as snap:
            snap.get("items", (1,))
            engine.drop_database("itemsdb")
            # The snapshot is gone for further reads...
            with pytest.raises(SnapshotError):
                snap.get("items", (2,))
        # ...but the lease unwound without raising.
        assert engine.snapshot_pool.active_leases() == 0
        assert len(engine.snapshot_pool) == 0

    def test_exception_mid_lease_survives_purge(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        t0 = mark(db)
        with pytest.raises(RuntimeError, match="original"):
            with engine.query_as_of("itemsdb", t0):
                engine.drop_database("itemsdb")
                raise RuntimeError("original")

    def test_named_snapshots_bypass_pool(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        t0 = mark(db)
        engine.create_asof_snapshot("itemsdb", "named", t0)
        assert len(engine.snapshot_pool) == 0
        assert "named" in engine.snapshots

    def test_driver_stock_level_as_of(self, engine):
        from repro.workload import TpccDriver, TpccScale, load_tpcc

        scale = TpccScale(
            warehouses=1,
            districts_per_warehouse=1,
            customers_per_district=5,
            items=30,
        )
        db = engine.create_database("tpcc")
        load_tpcc(db, scale)
        driver = TpccDriver(db, scale, seed=3, think_time_s=0.01)
        driver.run_transactions(40)
        engine.env.clock.advance(5)
        t0 = engine.env.clock.now()
        engine.env.clock.advance(5)
        driver.run_transactions(40)
        live = driver.stock_level_query(db)
        past = driver.stock_level_as_of(engine, t0)
        again = driver.stock_level_as_of(engine, t0)
        assert past == again
        assert engine.snapshot_pool.stats.misses == 1
        assert engine.snapshot_pool.stats.hits == 1
        assert isinstance(live, int)
