"""Database-level tests: transactions, rollback, isolation, boot page."""

from __future__ import annotations

import pytest

from repro.errors import (
    DuplicateKeyError,
    SnapshotReadOnlyError,
    TransactionError,
)
from repro.txn.locks import LockConflictError
from repro.txn.transaction import TxnState
from tests.conftest import ITEMS_SCHEMA, fill_items


class TestTransactions:
    def test_commit_makes_visible(self, items_db):
        txn = items_db.begin()
        items_db.insert(txn, "items", (1, "a", 1))
        items_db.commit(txn)
        assert txn.state is TxnState.COMMITTED
        assert items_db.get("items", (1,)) == (1, "a", 1)

    def test_context_manager_commits(self, items_db):
        with items_db.transaction() as txn:
            items_db.insert(txn, "items", (1, "a", 1))
        assert items_db.get("items", (1,)) is not None

    def test_context_manager_rolls_back_on_error(self, items_db):
        with pytest.raises(RuntimeError):
            with items_db.transaction() as txn:
                items_db.insert(txn, "items", (1, "a", 1))
                raise RuntimeError("boom")
        assert items_db.get("items", (1,)) is None

    def test_finished_txn_unusable(self, items_db):
        txn = items_db.begin()
        items_db.commit(txn)
        with pytest.raises(TransactionError):
            items_db.insert(txn, "items", (1, "a", 1))

    def test_commit_forces_log(self, items_db):
        with items_db.transaction() as txn:
            items_db.insert(txn, "items", (1, "a", 1))
        assert items_db.log.durable_lsn == items_db.log.end_lsn

    def test_rollback_mixed_ops(self, items_db):
        fill_items(items_db, 10)
        txn = items_db.begin()
        items_db.insert(txn, "items", (100, "new", 0))
        items_db.update(txn, "items", (3,), {"qty": -3})
        items_db.delete(txn, "items", (5,))
        items_db.rollback(txn)
        assert items_db.get("items", (100,)) is None
        assert items_db.get("items", (3,)) == (3, "item-3", 30)
        assert items_db.get("items", (5,)) == (5, "item-5", 50)

    def test_rollback_across_splits(self, small_db):
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 50)
        txn = db.begin()
        for i in range(50, 500):
            db.insert(txn, "items", (i, f"bulk-{i}", i))
        db.rollback(txn)
        rows = [r[0] for r in db.scan("items")]
        assert rows == list(range(50))
        # Tree remains fully functional after the mass rollback.
        fill_items(db, 50, start=50)
        assert db.table("items").count() == 100

    def test_rollback_delete_that_needs_split(self, small_db):
        """Undoing a delete may have to re-insert into a page that has
        since been filled by other (committed) rows — forcing a split
        during rollback."""
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        with db.transaction() as txn:
            for i in range(0, 40, 2):
                db.insert(txn, "items", (i, "x" * 20, i))
        victim = db.begin()
        db.delete(victim, "items", (10,))
        filler = db.begin()
        for i in range(1, 40, 2):
            db.insert(filler, "items", (i, "y" * 20, i))
        db.commit(filler)
        db.rollback(victim)
        assert db.get("items", (10,)) == (10, "x" * 20, 10)
        assert db.table("items").count() == 40

    def test_stats_track_commits_and_aborts(self, items_db):
        stats = items_db.env.stats
        before_commit = stats.transactions_committed
        before_abort = stats.transactions_aborted
        with items_db.transaction() as txn:
            items_db.insert(txn, "items", (1, "a", 1))
        txn = items_db.begin()
        items_db.rollback(txn)
        assert stats.transactions_committed == before_commit + 1
        assert stats.transactions_aborted == before_abort + 1


class TestIsolation:
    def test_write_write_conflict(self, items_db):
        fill_items(items_db, 5)
        t1 = items_db.begin()
        t2 = items_db.begin()
        items_db.update(t1, "items", (1,), {"qty": 11})
        with pytest.raises(LockConflictError):
            items_db.update(t2, "items", (1,), {"qty": 22})
        items_db.commit(t1)
        # After t1 releases, t2 can proceed.
        items_db.update(t2, "items", (1,), {"qty": 22})
        items_db.commit(t2)
        assert items_db.get("items", (1,))[2] == 22

    def test_reader_blocks_on_writer(self, items_db):
        fill_items(items_db, 5)
        t1 = items_db.begin()
        t2 = items_db.begin()
        items_db.update(t1, "items", (1,), {"qty": 11})
        with pytest.raises(LockConflictError):
            items_db.get("items", (1,), t2)
        items_db.rollback(t1)
        assert items_db.get("items", (1,), t2)[2] == 10
        items_db.commit(t2)

    def test_different_rows_no_conflict(self, items_db):
        fill_items(items_db, 5)
        t1 = items_db.begin()
        t2 = items_db.begin()
        items_db.update(t1, "items", (1,), {"qty": 11})
        items_db.update(t2, "items", (2,), {"qty": 22})
        items_db.commit(t1)
        items_db.commit(t2)
        assert items_db.get("items", (1,))[2] == 11
        assert items_db.get("items", (2,))[2] == 22

    def test_duplicate_insert_conflict_between_txns(self, items_db):
        t1 = items_db.begin()
        items_db.insert(t1, "items", (9, "mine", 1))
        t2 = items_db.begin()
        with pytest.raises(LockConflictError):
            items_db.insert(t2, "items", (9, "theirs", 2))
        items_db.rollback(t1)
        items_db.insert(t2, "items", (9, "theirs", 2))
        items_db.commit(t2)
        assert items_db.get("items", (9,))[1] == "theirs"


class TestSystemTxns:
    def test_system_txn_commits_independently(self, db):
        marker = {}

        def work(txn):
            assert txn.is_system
            marker["ran"] = True

        db.run_system_txn(work)
        assert marker["ran"]

    def test_system_txn_rolls_back_on_error(self, items_db):
        def work(txn):
            items_db.table("items").insert(txn, (1, "sys", 1))
            raise ValueError("fail")

        with pytest.raises(ValueError):
            items_db.run_system_txn(work)
        assert items_db.get("items", (1,)) is None


class TestBootPage:
    def test_default_undo_interval(self, db):
        assert db.undo_interval_s == db.config.undo_interval_s

    def test_set_undo_interval(self, db):
        db.set_undo_interval(3600)
        assert db.undo_interval_s == 3600

    def test_set_undo_interval_rejects_nonpositive(self, db):
        with pytest.raises(ValueError):
            db.set_undo_interval(0)

    def test_checkpoint_updates_boot(self, db):
        lsn = db.checkpoint()
        assert db.boot_record().last_checkpoint_lsn == lsn
        assert db.last_checkpoint_lsn == lsn

    def test_checkpoint_chain_links(self, db):
        first = db.checkpoint()
        second = db.checkpoint()
        from repro.core.split_lsn import checkpoint_chain

        chain = list(checkpoint_chain(db))
        assert chain[0][0] == second
        assert chain[0][2] == first

    def test_read_only_guard(self, items_db):
        items_db.read_only = True
        with pytest.raises(SnapshotReadOnlyError):
            items_db.begin()
        with pytest.raises(SnapshotReadOnlyError):
            with items_db.transaction() as txn:
                pass
        items_db.read_only = False


class TestDuplicateHandling:
    def test_failed_statement_does_not_poison_txn(self, items_db):
        with items_db.transaction() as txn:
            items_db.insert(txn, "items", (1, "a", 1))
            with pytest.raises(DuplicateKeyError):
                items_db.insert(txn, "items", (1, "b", 2))
            items_db.insert(txn, "items", (2, "c", 3))
        assert items_db.get("items", (1,)) == (1, "a", 1)
        assert items_db.get("items", (2,)) == (2, "c", 3)
