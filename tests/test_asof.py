"""As-of snapshot integration tests: the paper's headline behaviors."""

from __future__ import annotations

import pytest

from repro.errors import CatalogError, RetentionExceededError, SnapshotError
from tests.conftest import ITEMS_SCHEMA, fill_items


def mark(db) -> float:
    """Current simulated time, then advance so later commits are distinct."""
    now = db.env.clock.now()
    db.env.clock.advance(10)
    return now


class TestBasicTimeTravel:
    def test_point_query_in_the_past(self, engine, items_db):
        db = items_db
        fill_items(db, 10)
        t0 = mark(db)
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 999})
        snap = engine.create_asof_snapshot("itemsdb", "past", t0)
        assert snap.get("items", (1,)) == (1, "item-1", 10)
        assert db.get("items", (1,))[2] == 999

    def test_scan_in_the_past(self, engine, items_db):
        db = items_db
        fill_items(db, 10)
        t0 = mark(db)
        with db.transaction() as txn:
            for i in range(10, 30):
                db.insert(txn, "items", (i, f"late-{i}", i))
            db.delete(txn, "items", (0,))
        snap = engine.create_asof_snapshot("itemsdb", "past", t0)
        assert [r[0] for r in snap.scan("items")] == list(range(10))

    def test_multiple_asof_points(self, engine, items_db):
        db = items_db
        states = {}
        for generation in range(4):
            fill_items(db, 5, start=generation * 5)
            states[mark(db)] = 5 * (generation + 1)
        for idx, (t, expected) in enumerate(states.items()):
            snap = engine.create_asof_snapshot("itemsdb", f"gen{idx}", t)
            assert sum(1 for _ in snap.scan("items")) == expected

    def test_snapshot_unaffected_by_later_writes(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        t0 = mark(db)
        snap = engine.create_asof_snapshot("itemsdb", "pin", t0)
        assert snap.get("items", (2,))[2] == 20
        with db.transaction() as txn:
            db.update(txn, "items", (2,), {"qty": -2})
        # Page already materialized in the sparse file: stays historical.
        assert snap.get("items", (2,))[2] == 20

    def test_lazy_prepare_only_touched_pages(self, engine, small_config):
        db = engine.create_database("lazy", small_config)
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 500)
        t0 = mark(db)
        with db.transaction() as txn:
            db.update(txn, "items", (100,), {"qty": 1})
        snap = engine.create_asof_snapshot("lazy", "l", t0)
        total_pages = len(db.table("items").accessor.page_ids())
        snap.get("items", (100,))
        # Only the descent path was prepared, not the whole table.
        assert snap.sparse.page_count < total_pages / 2

    def test_string_timestamp_accepted(self, engine, items_db):
        db = items_db
        fill_items(db, 3)
        moment = db.env.clock.to_datetime(mark(db))
        with db.transaction() as txn:
            db.delete(txn, "items", (0,))
        snap = engine.create_asof_snapshot(
            "itemsdb", "iso", moment.replace(tzinfo=None).isoformat(sep=" ")
        )
        assert snap.get("items", (0,)) is not None


class TestDroppedTableRecovery:
    def test_paper_intro_workflow(self, engine, items_db):
        """The dropped-table scenario from the paper's introduction."""
        db = items_db
        fill_items(db, 20)
        t_good = mark(db)
        db.drop_table("items")
        assert "items" not in db.tables()

        # 1. Mount a snapshot, check metadata (iterating as needed).
        snap = engine.create_asof_snapshot("itemsdb", "probe", t_good)
        assert snap.table_exists("items")
        schema = snap.schema("items")
        assert schema.column_names == ("id", "name", "qty")

        # 2. Recreate the table and reconcile via extract + insert.
        db.create_table(schema)
        with db.transaction() as txn:
            for row in snap.scan("items"):
                db.insert(txn, "items", row)
        assert sum(1 for _ in db.scan("items")) == 20
        assert db.get("items", (7,)) == (7, "item-7", 70)

    def test_iterative_point_search(self, engine, items_db):
        """Probing earlier and earlier times until the table exists —
        cheap because only metadata pages are unwound."""
        db = items_db
        fill_items(db, 10)
        t_exists = mark(db)
        db.drop_table("items")
        t_gone = mark(db)
        snap_late = engine.create_asof_snapshot("itemsdb", "late", t_gone)
        assert not snap_late.table_exists("items")
        engine.drop_snapshot("late")
        snap_early = engine.create_asof_snapshot("itemsdb", "early", t_exists)
        assert snap_early.table_exists("items")

    def test_dropped_table_survives_page_reuse(self, engine, small_config):
        """Pages of the dropped table reused by a new table: preformat
        records carry the old incarnation across the reallocation."""
        db = engine.create_database("reuse", small_config)
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 200)
        t_good = mark(db)
        db.drop_table("items")
        from repro.catalog.schema import Column, ColumnType, TableSchema

        other = TableSchema(
            "other",
            (Column("k", ColumnType.INT), Column("v", ColumnType.STR, max_len=120)),
            key=("k",),
        )
        db.create_table(other)
        with db.transaction() as txn:
            for i in range(400):
                db.insert(txn, "other", (i, "fill" * 20))
        snap = engine.create_asof_snapshot("reuse", "rescue", t_good)
        rows = list(snap.scan("items"))
        assert [r[0] for r in rows] == list(range(200))


class TestInFlightTransactions:
    def test_straddling_txn_undone(self, engine, items_db):
        db = items_db
        fill_items(db, 10)
        straddler = db.begin()
        db.update(straddler, "items", (5,), {"qty": -5})
        db.insert(straddler, "items", (50, "phantom", 0))
        anchor = db.begin()
        db.update(anchor, "items", (6,), {"qty": 666})
        db.commit(anchor)
        t_mid = mark(db)
        db.commit(straddler)
        snap = engine.create_asof_snapshot("itemsdb", "mid", t_mid)
        assert snap.pending_undo_count == 1
        assert snap.get("items", (5,))[2] == 50
        assert snap.get("items", (50,)) is None
        assert snap.get("items", (6,))[2] == 666
        assert snap.pending_undo_count == 0

    def test_explicit_background_undo(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        straddler = db.begin()
        db.delete(straddler, "items", (2,))
        anchor = db.begin()
        db.insert(anchor, "items", (60, "anchor", 0))
        db.commit(anchor)
        t_mid = mark(db)
        db.commit(straddler)
        snap = engine.create_asof_snapshot("itemsdb", "bg", t_mid)
        assert snap.run_background_undo() == 1
        assert snap.get("items", (2,)) == (2, "item-2", 20)

    def test_straddler_rolled_back_later_is_also_undone(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        straddler = db.begin()
        db.update(straddler, "items", (1,), {"qty": -1})
        anchor = db.begin()
        db.insert(anchor, "items", (70, "a", 0))
        db.commit(anchor)
        t_mid = mark(db)
        db.rollback(straddler)
        snap = engine.create_asof_snapshot("itemsdb", "rb", t_mid)
        assert snap.get("items", (1,))[2] == 10


class TestSnapshotSemantics:
    def test_snapshot_is_read_only_surface(self, engine, items_db):
        fill_items(items_db, 3)
        snap = engine.create_asof_snapshot("itemsdb", "ro", mark(items_db))
        assert not hasattr(snap, "insert")
        table = snap.table("items")
        assert not hasattr(table, "insert")

    def test_unknown_table_raises(self, engine, items_db):
        snap = engine.create_asof_snapshot("itemsdb", "u", mark(items_db))
        with pytest.raises(CatalogError):
            snap.table("nope")

    def test_drop_snapshot_frees_and_guards(self, engine, items_db):
        fill_items(items_db, 3)
        snap = engine.create_asof_snapshot("itemsdb", "gone", mark(items_db))
        snap.get("items", (1,))
        assert snap.sparse.page_count > 0
        engine.drop_snapshot("gone")
        with pytest.raises(SnapshotError):
            snap.get("items", (1,))
        with pytest.raises(SnapshotError):
            engine.snapshot("gone")

    def test_duplicate_snapshot_name_rejected(self, engine, items_db):
        engine.create_asof_snapshot("itemsdb", "dup", mark(items_db))
        with pytest.raises(SnapshotError):
            engine.create_asof_snapshot("itemsdb", "dup", mark(items_db))

    def test_snapshot_of_unknown_database(self, engine):
        with pytest.raises(CatalogError):
            engine.create_asof_snapshot("ghost", "s", 0.0)

    def test_sparse_caching_avoids_reprepare(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        t0 = mark(db)
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 1})
        snap = engine.create_asof_snapshot("itemsdb", "c", t0)
        snap.get("items", (1,))
        prepared = db.env.stats.pages_prepared_asof
        snap._frames.clear()  # force sparse-file path, not frame cache
        snap.get("items", (1,))
        assert db.env.stats.pages_prepared_asof == prepared

    def test_two_snapshots_same_db_independent(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        t0 = mark(db)
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 100})
        t1 = mark(db)
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 200})
        s0 = engine.create_asof_snapshot("itemsdb", "s0", t0)
        s1 = engine.create_asof_snapshot("itemsdb", "s1", t1)
        assert s0.get("items", (1,))[2] == 10
        assert s1.get("items", (1,))[2] == 100
        assert db.get("items", (1,))[2] == 200

    def test_truncated_log_mid_window_raises_retention_error(self, engine, items_db):
        """The wall-clock retention check can pass while an in-flight
        transaction's chain still reaches below the truncation horizon;
        creation must surface RetentionExceededError, not leak the raw
        LogTruncatedError."""
        db = items_db
        fill_items(db, 5)
        straddler = db.begin()
        db.update(straddler, "items", (1,), {"qty": -1})  # early chain LSN
        db.env.clock.advance(20)
        first_checkpoint = db.checkpoint()  # straddler is active here
        db.env.clock.advance(5)
        with db.transaction() as txn:
            db.insert(txn, "items", (100, "late", 1))
        t_mid = db.env.clock.now()
        db.env.clock.advance(5)
        db.commit(straddler)
        # Truncate past the straddler's early records. t_mid is still well
        # inside the (24h default) wall-clock retention window.
        db.log.flush()
        db.log.truncate_before(first_checkpoint)
        with pytest.raises(RetentionExceededError):
            engine.create_asof_snapshot("itemsdb", "leak", t_mid)

    def test_frame_cache_eviction_during_large_scan(self, engine, small_config):
        """Scanning more pages than the snapshot frame cache holds (256)
        must evict cleanly: results stay correct and the sparse side file
        stays the durable tier the evicted frames fall back to."""
        from repro.catalog.schema import Column, ColumnType, TableSchema

        db = engine.create_database("big", small_config)
        schema = TableSchema(
            "big",
            (
                Column("id", ColumnType.INT),
                Column("pad", ColumnType.STR, max_len=420),
            ),
            key=("id",),
        )
        db.create_table(schema)
        with db.transaction() as txn:
            for i in range(600):
                db.insert(txn, "big", (i, "x" * 400))
        # A straddling transaction so the scan drives logical undo and the
        # undone pages are written back dirty to the sparse file.
        straddler = db.begin()
        db.update(straddler, "big", (300,), {"pad": "stray"})
        anchor = db.begin()
        db.update(anchor, "big", (0,), {"pad": "anchor"})
        db.commit(anchor)
        t_mid = db.env.clock.now()
        db.env.clock.advance(10)
        db.commit(straddler)

        snap = engine.create_asof_snapshot("big", "scan", t_mid)
        rows = list(snap.scan("big"))
        assert [row[0] for row in rows] == list(range(600))
        assert rows[0][1] == "anchor"  # committed before the split: kept
        assert rows[300][1] == "x" * 400  # straddler undone
        # More pages were materialized than the frame cache may hold, so
        # eviction ran; the cache is bounded and the sparse file is the
        # full record of what was prepared.
        assert snap.sparse.page_count > 256
        assert len(snap._frames) <= 256
        assert snap.side_file_bytes() == snap.sparse.page_count * db.config.page_size
        # A second scan is served from the side file: same rows, not a
        # single page re-prepared.
        prepared = db.env.stats.pages_prepared_asof
        side_bytes = snap.side_file_bytes()
        rows_again = list(snap.scan("big"))
        assert rows_again == rows
        assert db.env.stats.pages_prepared_asof == prepared
        assert snap.side_file_bytes() == side_bytes

    def test_boot_settings_visible_as_of(self, engine, items_db):
        """Even engine settings rewind: the boot page is ordinary data."""
        db = items_db
        db.set_undo_interval(111)
        t0 = mark(db)
        db.set_undo_interval(222)
        snap = engine.create_asof_snapshot("itemsdb", "boot", t0)
        from repro.engine.boot import read_boot_record

        with snap.fetch_page(0) as guard:
            rec = read_boot_record(guard.page)
        assert rec.undo_interval_s == 111
