"""reprolint tests: one flagged + one clean fixture per rule, the
suppression machinery, the baseline, and the log-artifact lint."""

from __future__ import annotations

import os

from repro.analysis import Analyzer, Baseline
from repro.analysis.framework import all_rules
from repro.replication.stream import LogFrame
from repro.tools.loginspect import lint_log_segments
from repro.tools.reprolint import main as reprolint_main
from repro.wal.lsn import FIRST_LSN
from repro.wal.records import InsertRowRecord


def rules_of(findings):
    return [f.rule for f in findings]


def check(source, relpath, select=None):
    analyzer = Analyzer(select=select)
    return analyzer.check_source(source, relpath)


class TestFramework:
    def test_every_rule_registered(self):
        assert set(all_rules()) == {
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
        }

    def test_syntax_error_reported_as_rl000(self):
        findings = check("def broken(:\n", "src/repro/engine/x.py")
        assert rules_of(findings) == ["RL000"]

    def test_path_scope_excludes_out_of_scope_files(self):
        # Raw open() is legal outside the priced-I/O directories.
        findings = check("open('x')\n", "src/repro/tools/x.py", {"RL002"})
        assert findings == []


class TestLsnDiscipline:
    def test_literal_comparison_flagged(self):
        src = "def f(commit_lsn):\n    return commit_lsn == 42\n"
        findings = check(src, "src/repro/engine/x.py", {"RL001"})
        assert rules_of(findings) == ["RL001"]
        assert "42" in findings[0].message

    def test_literal_assignment_and_keyword_and_default_flagged(self):
        src = (
            "def f(start_lsn=8):\n"
            "    split_lsn = 16\n"
            "    g(from_lsn=0)\n"
        )
        findings = check(src, "src/repro/core/x.py", {"RL001"})
        assert rules_of(findings) == ["RL001", "RL001", "RL001"]

    def test_symbolic_constants_and_arithmetic_clean(self):
        src = (
            "from repro.wal.lsn import NULL_LSN\n"
            "def f(end_lsn, prev_lsn=NULL_LSN):\n"
            "    if end_lsn == NULL_LSN:\n"
            "        return prev_lsn\n"
            "    return end_lsn - prev_lsn\n"
        )
        assert check(src, "src/repro/engine/x.py", {"RL001"}) == []

    def test_lsn_module_itself_exempt(self):
        src = "NULL_LSN = 0\nFIRST_LSN = 8\n"
        assert check(src, "src/repro/wal/lsn.py", {"RL001"}) == []

    def test_booleans_are_not_integers(self):
        src = "def f(has_lsn):\n    return has_lsn == True\n"
        assert check(src, "src/repro/engine/x.py", {"RL001"}) == []


class TestPricedIoDiscipline:
    def test_raw_open_flagged_in_scope(self):
        src = "def f(path):\n    return open(path, 'rb').read()\n"
        findings = check(src, "src/repro/storage/x.py", {"RL002"})
        assert rules_of(findings) == ["RL002"]

    def test_os_calls_flagged_through_import_alias(self):
        src = (
            "import os as host\n"
            "def f(fh):\n"
            "    host.fsync(fh.fileno())\n"
        )
        findings = check(src, "src/repro/wal/x.py", {"RL002"})
        assert rules_of(findings) == ["RL002"]

    def test_hostio_boundary_clean(self):
        src = (
            "from repro.sim import hostio\n"
            "def f(path, blob):\n"
            "    hostio.write_blob(path, blob)\n"
        )
        assert check(src, "src/repro/archive/x.py", {"RL002"}) == []

    def test_chain_walk_read_bytes_flagged_read_many_clean(self):
        src = (
            "def walk(log, spans):\n"
            "    log.read_bytes(spans[0], 10)\n"
            "    return log.read_many(spans)\n"
        )
        findings = check(src, "src/repro/core/x.py", {"RL002"})
        assert rules_of(findings) == ["RL002"]
        assert "read_bytes" in findings[0].message


class TestReplayDeterminism:
    def test_host_clock_flagged(self):
        src = "import time\ndef f():\n    return time.time()\n"
        findings = check(src, "src/repro/engine/x.py", {"RL003"})
        assert rules_of(findings) == ["RL003"]

    def test_from_import_resolved(self):
        src = "from time import perf_counter\nx = perf_counter()\n"
        findings = check(src, "src/repro/bench/x.py", {"RL003"})
        assert rules_of(findings) == ["RL003"]

    def test_global_rng_flagged_seeded_rng_clean(self):
        src = (
            "import random\n"
            "bad = random.random()\n"
            "good = random.Random(7).random()\n"
        )
        findings = check(src, "src/repro/workload/x.py", {"RL003"})
        assert rules_of(findings) == ["RL003"]
        assert findings[0].line == 2

    def test_sim_clock_and_host_boundary_clean(self):
        src = (
            "from repro.sim.clock import host_perf_counter\n"
            "def f(env):\n"
            "    return env.clock.now() + host_perf_counter()\n"
        )
        assert check(src, "src/repro/tools/x.py", {"RL003"}) == []


class TestErrorSurfaceDiscipline:
    def test_unprotected_log_read_in_public_method_flagged(self):
        src = (
            "class Engine:\n"
            "    def query_as_of(self, lsn):\n"
            "        return self.log.read(lsn)\n"
        )
        findings = check(src, "src/repro/engine/engine.py", {"RL004"})
        assert rules_of(findings) == ["RL004"]
        assert "query_as_of" in findings[0].message

    def test_protected_log_read_clean(self):
        src = (
            "from repro.errors import LogTruncatedError, RetentionExceededError\n"
            "class Engine:\n"
            "    def query_as_of(self, lsn):\n"
            "        try:\n"
            "            return self.log.read(lsn)\n"
            "        except LogTruncatedError as err:\n"
            "            raise RetentionExceededError(str(err)) from err\n"
        )
        assert check(src, "src/repro/engine/engine.py", {"RL004"}) == []

    def test_private_method_not_a_public_surface(self):
        src = (
            "class Engine:\n"
            "    def _walk(self, lsn):\n"
            "        return self.log.read(lsn)\n"
        )
        assert check(src, "src/repro/engine/engine.py", {"RL004"}) == []


class TestSharedStateDiscipline:
    def test_cross_module_mutation_flagged(self):
        src = "def hook(db, pin):\n    db.retention_pins.append(pin)\n"
        findings = check(src, "src/repro/replication/x.py", {"RL005"})
        assert rules_of(findings) == ["RL005"]
        assert "retention_pins" in findings[0].message

    def test_owner_module_mutation_clean(self):
        src = "def hook(self, pin):\n    self.retention_pins.append(pin)\n"
        assert check(src, "src/repro/engine/database.py", {"RL005"}) == []

    def test_guarded_mutation_clean(self):
        src = (
            "def hook(db, pin):\n"
            "    with db.latch:\n"
            "        db.retention_pins.append(pin)\n"
        )
        assert check(src, "src/repro/replication/x.py", {"RL005"}) == []

    def test_private_method_of_shared_owner_flagged(self):
        src = "def refresh(db):\n    db._load_boot()\n"
        findings = check(src, "src/repro/backup/x.py", {"RL005"})
        assert rules_of(findings) == ["RL005"]
        assert "_load_boot" in findings[0].message

    def test_rebinding_shared_attribute_flagged(self):
        src = "def reset(db):\n    db.retention_pins = []\n"
        findings = check(src, "src/repro/backup/x.py", {"RL005"})
        assert rules_of(findings) == ["RL005"]

    # -- strict (latched) entries ---------------------------------------

    def test_strict_owner_mutation_without_guard_flagged(self):
        # _entries is strict: even the owning module must hold the latch.
        src = "def evict(self, key):\n    del self._entries[key]\n"
        findings = check(src, "src/repro/core/snapshot_pool.py", {"RL005"})
        assert rules_of(findings) == ["RL005"]
        assert "latched shared state" in findings[0].message

    def test_strict_owner_mutation_under_guard_clean(self):
        src = (
            "def evict(self, key):\n"
            "    with self.latch:\n"
            "        del self._entries[key]\n"
        )
        assert check(src, "src/repro/core/snapshot_pool.py", {"RL005"}) == []

    def test_strict_ctor_assignment_on_self_clean(self):
        # __init__ predates sharing: the first assignment needs no guard.
        src = (
            "class SnapshotPool:\n"
            "    def __init__(self):\n"
            "        self._entries = {}\n"
        )
        assert check(src, "src/repro/core/snapshot_pool.py", {"RL005"}) == []

    def test_strict_ctor_exemption_is_self_only(self):
        # Mutating *another* object's latched state in a ctor still needs
        # the guard — only self-assignments predate sharing.
        src = (
            "class Adopter:\n"
            "    def __init__(self, pool):\n"
            "        pool._entries = {}\n"
        )
        findings = check(src, "src/repro/core/snapshot_pool.py", {"RL005"})
        assert rules_of(findings) == ["RL005"]

    def test_strict_mutating_call_outside_guard_flagged(self):
        src = "def note(self, name):\n    self._waits.pop(name, None)\n"
        findings = check(src, "src/repro/txn/locks.py", {"RL005"})
        assert rules_of(findings) == ["RL005"]

    def test_strict_mutation_outside_ctor_method_flagged(self):
        # A non-ctor method assigning on self still needs the guard.
        src = (
            "class LogManager:\n"
            "    def crash(self):\n"
            "        self._data = bytearray()\n"
        )
        findings = check(src, "src/repro/wal/log_manager.py", {"RL005"})
        assert rules_of(findings) == ["RL005"]


class TestObsInstrumentation:
    def test_bare_host_clock_read_flagged(self):
        src = (
            "from repro.sim.clock import host_perf_counter\n"
            "def bench():\n"
            "    t0 = host_perf_counter()\n"
            "    work()\n"
            "    return host_perf_counter() - t0\n"
        )
        findings = check(src, "src/repro/workload/x.py", {"RL006"})
        assert rules_of(findings) == ["RL006", "RL006"]
        assert "host_timing" in findings[0].message

    def test_host_timing_wrapper_clean(self):
        src = (
            "from repro.obs.timing import host_timing\n"
            "def bench():\n"
            "    with host_timing() as timer:\n"
            "        work()\n"
            "    return timer.elapsed\n"
        )
        assert check(src, "src/repro/workload/x.py", {"RL006"}) == []

    def test_obs_and_sim_modules_exempt(self):
        src = (
            "from repro.sim.clock import host_perf_counter\n"
            "t = host_perf_counter()\n"
        )
        assert check(src, "src/repro/obs/timing.py", {"RL006"}) == []
        assert check(src, "src/repro/sim/clock.py", {"RL006"}) == []


class TestFaultHandlingDiscipline:
    def test_silent_broad_swallow_flagged(self):
        src = (
            "def poll(self):\n"
            "    try:\n"
            "        self.ship()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        findings = check(src, "src/repro/replication/x.py", {"RL007"})
        assert rules_of(findings) == ["RL007"]
        assert "ReplicationFaultError" in findings[0].message

    def test_bare_except_swallow_flagged(self):
        src = (
            "def flush(self):\n"
            "    try:\n"
            "        self.store()\n"
            "    except:\n"
            "        return None\n"
        )
        findings = check(src, "src/repro/archive/x.py", {"RL007"})
        assert rules_of(findings) == ["RL007"]

    def test_wrap_typed_clean(self):
        src = (
            "def receive(self, blob):\n"
            "    try:\n"
            "        return decode(blob)\n"
            "    except Exception as err:\n"
            "        raise ReplicationFaultError(str(err), resume_lsn=0)\n"
        )
        assert check(src, "src/repro/replication/x.py", {"RL007"}) == []

    def test_recording_the_fault_clean(self):
        src = (
            "def poll(self):\n"
            "    try:\n"
            "        self.ship()\n"
            "    except Exception as err:\n"
            "        self._note_failure(sub, err, now)\n"
        )
        assert check(src, "src/repro/replication/x.py", {"RL007"}) == []

    def test_narrow_handler_out_of_scope(self):
        src = (
            "def poll(self):\n"
            "    try:\n"
            "        self.ship()\n"
            "    except KeyError:\n"
            "        pass\n"
        )
        assert check(src, "src/repro/replication/x.py", {"RL007"}) == []

    def test_outside_replication_scope_clean(self):
        src = (
            "def anywhere():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert check(src, "src/repro/engine/x.py", {"RL007"}) == []


class TestSuppressions:
    SRC = "import time\nx = time.time()  # reprolint: ignore[RL003]\n"

    def test_targeted_suppression(self):
        assert check(self.SRC, "src/repro/engine/x.py", {"RL003"}) == []

    def test_suppression_is_rule_specific(self):
        src = "import time\nx = time.time()  # reprolint: ignore[RL001]\n"
        findings = check(src, "src/repro/engine/x.py", {"RL003"})
        assert rules_of(findings) == ["RL003"]

    def test_blanket_suppression(self):
        src = "import time\nx = time.time()  # reprolint: ignore\n"
        assert check(src, "src/repro/engine/x.py", {"RL003"}) == []

    def test_skip_file(self):
        src = "# reprolint: skip-file\nimport time\nx = time.time()\n"
        assert check(src, "src/repro/engine/x.py", {"RL003"}) == []


class TestBaseline:
    def test_split_and_stale(self, tmp_path):
        src = "import time\nx = time.time()\n"
        findings = check(src, "src/repro/engine/x.py", {"RL003"})
        assert len(findings) == 1
        path = tmp_path / "baseline.json"
        path.write_text(Baseline().dump(findings))
        baseline = Baseline.load(str(path))
        new, baselined = baseline.split(findings)
        assert new == [] and baselined == findings
        assert baseline.stale_entries([]) == {findings[0].identity()}

    def test_repo_baseline_is_empty(self):
        baseline = Baseline.load("reprolint-baseline.json")
        assert baseline.split([])[1] == []
        assert baseline.stale_entries([]) == set()


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert reprolint_main([str(tmp_path)]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_gate_fails_on_violation(self, tmp_path, capsys, monkeypatch):
        pkg = tmp_path / "src" / "repro" / "engine"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("import time\nx = time.time()\n")
        monkeypatch.chdir(tmp_path)
        assert reprolint_main(["src", "--gate"]) == 1
        assert "RL003" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
        ):
            assert rule_id in out


class TestLogLint:
    @staticmethod
    def _segment(start_lsn):
        record = InsertRowRecord(slot=0, row=bytes(20), page_id=1)
        record.lsn = start_lsn
        return LogFrame(start_lsn, record.serialize(), ship_wall=0.0).encode()

    def _write(self, directory, blob, start_lsn, end_lsn, name="t"):
        path = os.path.join(
            directory, f"{name}-{start_lsn:016x}-{end_lsn:016x}.seg"
        )
        with open(path, "wb") as handle:
            handle.write(blob)
        return path

    def test_clean_archive(self, tmp_path):
        blob = self._segment(FIRST_LSN)
        frame = LogFrame.decode(blob)
        nxt = self._segment(frame.end_lsn)
        self._write(str(tmp_path), blob, FIRST_LSN, frame.end_lsn)
        self._write(
            str(tmp_path), nxt, frame.end_lsn, LogFrame.decode(nxt).end_lsn
        )
        assert lint_log_segments(str(tmp_path)) == []

    def test_crc_corruption_flagged(self, tmp_path):
        blob = bytearray(self._segment(FIRST_LSN))
        blob[-1] ^= 0xFF
        end = FIRST_LSN + 64
        self._write(str(tmp_path), bytes(blob), FIRST_LSN, end)
        findings = lint_log_segments(str(tmp_path))
        assert rules_of(findings) == ["LOG001"]

    def test_gap_between_segments_flagged(self, tmp_path):
        blob = self._segment(FIRST_LSN)
        end = LogFrame.decode(blob).end_lsn
        skipped = self._segment(end + 512)
        self._write(str(tmp_path), blob, FIRST_LSN, end)
        self._write(
            str(tmp_path), skipped, end + 512, LogFrame.decode(skipped).end_lsn
        )
        findings = lint_log_segments(str(tmp_path))
        assert rules_of(findings) == ["LOG003"]
        assert "gap" in findings[0].message
