"""Archive tier tests: store, archiver, incremental backups, restore,
backup-seeded replicas, the query_as_of archive fallback, and the SQL
surface (BACKUP DATABASE / RESTORE DATABASE ... AS OF)."""

from __future__ import annotations

import os

import pytest

from repro.archive import (
    ArchiveStore,
    IncrementalBackup,
    plan_restore,
    take_incremental_backup,
)
from repro.backup import take_full_backup
from repro.config import CostModel, SimEnv
from repro.engine.engine import Engine
from repro.errors import (
    ArchiveError,
    BackupError,
    ReplicationError,
    RetentionExceededError,
)
from repro.replication.stream import LogFrame
from repro.sim.device import SLC_SSD
from repro.tools import check_database, dump_archive, dump_archived_segment
from repro.tools.loginspect import main as loginspect_main
from repro.wal.lsn import FIRST_LSN
from tests.conftest import fill_items


def expire_retention(db, window_s: float = 10.0) -> None:
    """Age the database past a short retention window and truncate."""
    db.set_undo_interval(window_s)
    for _ in range(2):
        db.env.clock.advance(window_s * 10)
        db.checkpoint()
    db.enforce_retention()


class TestArchiveStore:
    def test_segments_must_be_contiguous(self, env):
        store = ArchiveStore(env)
        store.put_segment("db", LogFrame(8, b"x" * 16, 0.0).encode())
        with pytest.raises(ArchiveError, match="gap"):
            store.put_segment("db", LogFrame(100, b"y" * 16, 0.0).encode())

    def test_coverage_and_charging(self, env):
        store = ArchiveStore(env)
        assert store.coverage("db") is None
        store.put_segment("db", LogFrame(8, b"x" * 16, 0.0).encode())
        store.put_segment("db", LogFrame(24, b"y" * 8, 1.0).encode())
        assert store.coverage("db") == (8, 32)
        assert env.stats.archive_segments_written == 2
        assert env.stats.archive_write_bytes > 24

    def test_incremental_backup_must_chain(self, env, items_db):
        store = ArchiveStore(env)
        fill_items(items_db, 10)
        full = take_full_backup(items_db)
        inc = take_incremental_backup(items_db, full)
        with pytest.raises(BackupError, match="not in the archive"):
            store.put_backup(inc)
        store.put_backup(full)
        store.put_backup(inc)
        assert [type(b) for b in store.newest_chain("itemsdb")] == [
            type(full),
            IncrementalBackup,
        ]

    def test_directory_persistence(self, env, tmp_path):
        store = ArchiveStore(env, directory=str(tmp_path / "arch"))
        store.put_segment("db", LogFrame(8, b"x" * 16, 0.0).encode())
        names = os.listdir(tmp_path / "arch")
        assert len(names) == 1 and names[0].endswith(".seg")


class TestLogArchiver:
    def test_continuous_archiving_tracks_durable_end(self, engine, items_db):
        archiver = engine.enable_archiving("itemsdb")
        fill_items(items_db, 30)
        items_db.log.flush()
        archiver.poll()
        assert archiver.lag_bytes() == 0
        start, end = archiver.store.coverage("itemsdb")
        assert start == FIRST_LSN
        assert end == items_db.log.durable_lsn

    def test_unarchived_log_is_pinned_until_archived(self, engine, items_db):
        db = items_db
        archiver = engine.enable_archiving("itemsdb")
        cursor = archiver.received_lsn
        fill_items(db, 30)
        db.log.flush()
        db.set_undo_interval(5)
        db.env.clock.advance(100)
        db.checkpoint()
        db.env.clock.advance(100)
        db.checkpoint()
        # The horizon has moved past the unarchived range, but the
        # archiver's cursor holds the log until the segments are durable.
        db.enforce_retention()
        assert db.log.start_lsn <= cursor
        archiver.poll()
        db.enforce_retention()
        assert db.log.start_lsn > cursor

    def test_disable_archiving_releases_the_pin(self, engine, items_db):
        """Satellite: after archiver shutdown truncation must resume."""
        db = items_db
        engine.enable_archiving("itemsdb")
        fill_items(db, 30)
        db.log.flush()
        engine.disable_archiving("itemsdb")
        assert engine.archives["itemsdb"].closed
        db.set_undo_interval(5)
        retained_before = db.log.start_lsn
        db.env.clock.advance(100)
        db.checkpoint()
        db.env.clock.advance(100)
        db.checkpoint()
        db.enforce_retention()
        assert db.log.start_lsn > retained_before

    def test_closed_archiver_refuses_frames(self, engine, items_db):
        archiver = engine.enable_archiving("itemsdb")
        archiver.close()
        assert archiver.poll() == 0
        with pytest.raises(ArchiveError, match="closed"):
            archiver.receive(LogFrame(archiver.received_lsn, b"", 0.0).encode())

    def test_recreated_database_cannot_reuse_the_archive(self, engine, items_db):
        """A dropped-and-recreated database starts a fresh LSN space; the
        namesake's archive must neither absorb nor serve it."""
        engine.enable_archiving("itemsdb")
        fill_items(items_db, 20)
        mark = items_db.env.clock.now()
        items_db.log.flush()
        engine.archives["itemsdb"].poll()
        old_store = engine.archives["itemsdb"].store
        engine.drop_database("itemsdb")
        from tests.conftest import ITEMS_SCHEMA

        reborn = engine.create_database("itemsdb")
        reborn.create_table(ITEMS_SCHEMA)
        # Reusing the name forfeits the namesake's archive entirely...
        assert "itemsdb" not in engine.archives
        with pytest.raises(ArchiveError, match="no archive"):
            engine.restore_from_archive("itemsdb", mark)
        # ...and wiring the old store back in explicitly is refused.
        with pytest.raises(ArchiveError, match="different incarnation"):
            engine.enable_archiving("itemsdb", store=old_store)
        archiver = engine.enable_archiving("itemsdb")
        assert archiver.store is not old_store

    def test_recreated_database_fallback_never_serves_old_data(self, engine, items_db):
        marks = _marked_generations(engine, items_db)
        engine.drop_database("itemsdb")
        from tests.conftest import ITEMS_SCHEMA

        reborn = engine.create_database("itemsdb")
        reborn.create_table(ITEMS_SCHEMA)
        expire_retention(reborn)
        with pytest.raises(RetentionExceededError):
            with engine.query_as_of("itemsdb", marks[0]):
                pass

    def test_enable_with_conflicting_config_refused(self, engine, items_db, tmp_path):
        archiver = engine.enable_archiving("itemsdb")
        with pytest.raises(ArchiveError, match="already enabled"):
            engine.enable_archiving("itemsdb", directory=str(tmp_path))
        assert engine.enable_archiving("itemsdb") is archiver
        # Re-enabling with the *same* store is idempotent, not an error.
        assert engine.enable_archiving("itemsdb", store=archiver.store) is archiver
        # After a disable, an explicit directory means a *new* store — the
        # old one cannot honor the requested persistence.
        engine.disable_archiving("itemsdb")
        rearmed = engine.enable_archiving("itemsdb", directory=str(tmp_path))
        assert rearmed.store.directory == str(tmp_path)

    def test_reenable_resumes_at_archive_edge(self, engine, items_db):
        db = items_db
        archiver = engine.enable_archiving("itemsdb")
        fill_items(db, 10)
        db.log.flush()
        archiver.poll()
        edge = archiver.received_lsn
        engine.disable_archiving("itemsdb")
        fill_items(db, 10, start=10)
        db.log.flush()
        again = engine.enable_archiving("itemsdb")
        assert again is not archiver
        assert again.store is archiver.store
        again.poll()
        assert again.store.coverage("itemsdb")[1] == db.log.durable_lsn
        assert again.received_lsn > edge


class TestShipperPinLifecycle:
    """Satellite: a detached subscriber must stop holding the log."""

    def test_detached_replica_releases_the_pin(self, engine, items_db):
        db = items_db
        fill_items(db, 10)
        engine.add_replica("itemsdb", "standby")
        shipper = engine.shipper_for("itemsdb")
        cursor = shipper._retention_pin()
        # More work the standby never sees (no ticks).
        fill_items(db, 30, start=10)
        db.log.flush()
        db.set_undo_interval(5)
        db.env.clock.advance(100)
        db.checkpoint()
        db.env.clock.advance(100)
        db.checkpoint()
        db.enforce_retention()
        assert db.log.start_lsn <= cursor
        engine.drop_replica("standby")
        assert shipper._retention_pin() is None
        db.enforce_retention()
        assert db.log.start_lsn > cursor


class TestIncrementalBackup:
    def test_copies_only_changed_pages(self, items_db):
        db = items_db
        fill_items(db, 200)
        full = take_full_backup(db)
        with db.transaction() as txn:
            db.update(txn, "items", (3,), {"qty": -1})
        inc = take_incremental_backup(db, full)
        assert inc.base_lsn == full.backup_lsn
        assert inc.backup_lsn > full.backup_lsn
        assert 0 < len(inc.pages) < len(full.pages)
        # Every incremental page is newer than the base.
        from repro.storage.page import Page

        for data in inc.pages.values():
            assert Page(bytearray(data)).page_lsn > full.backup_lsn

    def test_chain_of_incrementals(self, items_db):
        db = items_db
        fill_items(db, 50)
        full = take_full_backup(db)
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 111})
        inc1 = take_incremental_backup(db, full)
        with db.transaction() as txn:
            db.update(txn, "items", (2,), {"qty": 222})
        inc2 = take_incremental_backup(db, inc1)
        assert inc2.base_lsn == inc1.backup_lsn
        assert set(inc2.pages) != set(full.pages)


def _marked_generations(engine, db):
    """Full + two incrementals with a mark inside each era."""
    fill_items(db, 30)
    engine.backup_database("itemsdb")
    marks = []
    for gen in range(3):
        db.env.clock.advance(10)
        with db.transaction() as txn:
            db.update(txn, "items", (1,), {"qty": 1000 + gen})
            db.insert(txn, "items", (100 + gen, f"gen{gen}", gen))
        marks.append(db.env.clock.now())
        db.env.clock.advance(10)
        if gen < 2:
            engine.backup_database("itemsdb")
    db.log.flush()
    engine.archives["itemsdb"].poll()
    return marks


class TestRestoreFromArchive:
    def test_restore_each_generation(self, engine, items_db):
        marks = _marked_generations(engine, items_db)
        for gen, when in enumerate(marks):
            restored = engine.restore_from_archive("itemsdb", when)
            assert restored.get("items", (1,))[2] == 1000 + gen
            present = {r[0] for r in restored.scan("items")}
            assert {100 + g for g in range(gen + 1)}.issubset(present)
            assert 100 + gen + 1 not in present
            assert restored.read_only
            assert restored.name in engine.databases

    def test_restore_past_retention_horizon(self, engine, items_db):
        """The acceptance path: the pool cannot reach t, the archive can."""
        db = items_db
        marks = _marked_generations(engine, db)
        expire_retention(db)
        with pytest.raises(RetentionExceededError):
            engine.snapshot_pool.acquire(db, marks[0])
        restored = engine.restore_from_archive("itemsdb", marks[0])
        assert restored.get("items", (1,))[2] == 1000
        assert check_database(restored).ok

    def test_restore_after_database_dropped(self, engine, items_db):
        marks = _marked_generations(engine, items_db)
        engine.drop_database("itemsdb")
        restored = engine.restore_from_archive("itemsdb", marks[2])
        assert restored.get("items", (1,))[2] == 1002

    def test_restore_agrees_with_live_asof(self, engine, items_db):
        marks = _marked_generations(engine, items_db)
        restored = engine.restore_from_archive("itemsdb", marks[1])
        with engine.query_as_of("itemsdb", marks[1]) as snap:
            assert list(snap.scan("items")) == list(restored.scan("items"))

    def test_restore_without_archive_is_guided(self, engine, items_db):
        with pytest.raises(ArchiveError, match="backup_database"):
            engine.restore_from_archive("itemsdb", 1.0)

    def test_restore_before_first_backup_rejected(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        engine.enable_archiving("itemsdb")
        early = db.env.clock.now()
        db.env.clock.advance(50)
        fill_items(db, 5, start=10)
        engine.backup_database("itemsdb")
        with pytest.raises(ArchiveError, match="BACKUP DATABASE"):
            engine.restore_from_archive("itemsdb", early)


class TestRestorePlanner:
    def _archived_scenario(self, heavy_churn: int):
        env = SimEnv(SLC_SSD, SLC_SSD, CostModel())
        engine = Engine(env)
        db = engine.create_database("perfdb")
        from tests.conftest import ITEMS_SCHEMA

        db.create_table(ITEMS_SCHEMA)
        with db.transaction() as txn:
            for i in range(50):
                db.insert(txn, "items", (i, f"i{i}", i))
        engine.backup_database("perfdb")
        env.clock.advance(10)
        with db.transaction() as txn:
            for j in range(heavy_churn):
                db.update(txn, "items", (j % 50,), {"qty": j})
        env.clock.advance(10)
        engine.backup_database("perfdb")
        env.clock.advance(10)
        with db.transaction() as txn:
            db.update(txn, "items", (0,), {"qty": -1})
        target = env.clock.now()
        env.clock.advance(5)
        db.log.flush()
        archiver = engine.archives["perfdb"]
        archiver.poll()
        return engine, archiver.store, target

    def test_heavy_churn_makes_the_incremental_win(self):
        engine, store, target = self._archived_scenario(heavy_churn=5000)
        plan = plan_restore(store, "perfdb", target)
        assert len(plan.chain) == 2  # full + incremental beats log replay
        assert plan.replay_bytes < 100_000

    def test_light_churn_makes_the_full_alone_win(self):
        engine, store, target = self._archived_scenario(heavy_churn=1)
        plan = plan_restore(store, "perfdb", target)
        assert len(plan.chain) == 1  # replaying a tiny log beats copying

    def test_planner_estimates_are_consistent(self):
        engine, store, target = self._archived_scenario(heavy_churn=200)
        plan = plan_restore(store, "perfdb", target)
        assert plan.estimated_s > 0
        assert plan.split_lsn >= plan.roll_from_lsn
        restored = engine.restore_from_archive("perfdb", target)
        assert restored.get("items", (0,))[2] == -1


class TestQueryAsOfArchiveFallback:
    def test_falls_back_past_the_horizon(self, engine, items_db):
        marks = _marked_generations(engine, items_db)
        expire_retention(items_db)
        with engine.query_as_of("itemsdb", marks[0]) as reader:
            assert reader.get("items", (1,))[2] == 1000
        # Same split reuses the cached archive-backed copy.
        with engine.query_as_of("itemsdb", marks[0]) as reader1:
            first = reader1
        with engine.query_as_of("itemsdb", marks[0]) as reader2:
            assert reader2 is first

    def test_inline_sql_falls_back(self, engine, items_db):
        marks = _marked_generations(engine, items_db)
        expire_retention(items_db)
        result = engine.sql(
            f"SELECT qty FROM items AS OF {marks[1]} WHERE id = 1", "itemsdb"
        )
        assert result.scalar() == 1001

    def test_pinned_session_falls_back(self, engine, items_db):
        marks = _marked_generations(engine, items_db)
        expire_retention(items_db)
        with engine.session() as session:
            session.execute(f"USE itemsdb AS OF {marks[0]}")
            assert session.execute("SELECT qty FROM items WHERE id = 1").scalar() == 1000

    def test_error_names_recovery_options(self, engine, items_db):
        """Satellite: a bare horizon error must point at the ways out."""
        db = items_db
        fill_items(db, 5)
        mark = db.env.clock.now()
        expire_retention(db)
        with pytest.raises(RetentionExceededError) as err:
            with engine.query_as_of("itemsdb", mark):
                pass
        message = str(err.value)
        assert "backup_database" in message
        assert "delayed-apply replica" in message
        with pytest.raises(RetentionExceededError) as err2:
            engine.create_asof_snapshot("itemsdb", "nope", mark)
        assert "delayed-apply replica" in str(err2.value)

    def test_error_mentions_existing_archive(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        mark = db.env.clock.now()
        db.env.clock.advance(50)
        engine.backup_database("itemsdb")  # archive exists, but t precedes it
        expire_retention(db)
        with pytest.raises(RetentionExceededError) as err:
            engine.create_asof_snapshot("itemsdb", "nope", mark)
        assert "restore_from_archive" in str(err.value)
        # The query path actually *tries* the archive; when it cannot
        # serve the time, the error carries that cause, not a dead-end
        # recommendation to restore_from_archive.
        with pytest.raises(RetentionExceededError) as qerr:
            with engine.query_as_of("itemsdb", mark):
                pass
        assert "could not serve" in str(qerr.value)
        assert "restore_from_archive" not in str(qerr.value)


class TestSeedReplicaFromBackup:
    def _truncated_primary(self, engine, db):
        marks = _marked_generations(engine, db)
        expire_retention(db)
        assert db.log.start_lsn > FIRST_LSN
        return marks

    def test_plain_add_replica_refuses_and_guides(self, engine, items_db):
        self._truncated_primary(engine, items_db)
        with pytest.raises(ReplicationError, match="seed_from_backup"):
            engine.add_replica("itemsdb", "standby")

    def test_seeded_replica_attaches_and_catches_up(self, engine, items_db):
        """Acceptance: attach after truncation, catch up, serve identical
        reads, and keep following new writes."""
        db = items_db
        self._truncated_primary(engine, db)
        replica = engine.add_replica("itemsdb", "standby", seed_from_backup=True)
        assert replica.lag_bytes() == 0
        assert list(replica.scan("items")) == list(db.scan("items"))
        with db.transaction() as txn:
            db.insert(txn, "items", (999, "after-seed", 1))
        db.log.flush()
        engine.replication_tick()
        assert replica.get("items", (999,))[2] == 1
        assert list(replica.scan("items")) == list(db.scan("items"))
        assert check_database(replica.db).ok

    def test_seed_requires_an_archived_backup(self, engine, items_db):
        fill_items(items_db, 5)
        with pytest.raises(ReplicationError, match="backup_database"):
            engine.add_replica("itemsdb", "standby", seed_from_backup=True)

    def test_failed_seed_attach_leaves_no_dead_replica(self, engine, items_db):
        """A stale chain whose end the primary no longer retains cannot
        resume the stream — and must not leave a half-registered standby."""
        db = items_db
        fill_items(db, 10)
        engine.backup_database("itemsdb")
        engine.disable_archiving("itemsdb")
        fill_items(db, 30, start=10)
        db.log.flush()
        expire_retention(db)
        assert db.log.start_lsn > engine.archives["itemsdb"].store.coverage("itemsdb")[1]
        with pytest.raises(ReplicationError):
            engine.add_replica("itemsdb", "standby", seed_from_backup=True)
        assert "standby" not in engine.replicas
        assert engine.replication_tick() == 0  # nothing dead left ticking

    def test_seeded_replica_promotes(self, engine, items_db):
        db = items_db
        self._truncated_primary(engine, db)
        engine.add_replica("itemsdb", "standby", seed_from_backup=True)
        promoted = engine.promote_replica("standby")
        assert sorted(r[0] for r in promoted.scan("items")) == sorted(
            r[0] for r in db.scan("items")
        )
        with promoted.transaction() as txn:
            promoted.insert(txn, "items", (1234, "post-promote", 0))
        assert promoted.get("items", (1234,)) is not None


class TestSqlSurface:
    def test_backup_and_restore_statements(self, engine, items_db):
        fill_items(items_db, 20)
        result = engine.sql("BACKUP DATABASE itemsdb", "itemsdb")
        assert "full" in result.message
        items_db.env.clock.advance(10)
        with items_db.transaction() as txn:
            items_db.update(txn, "items", (1,), {"qty": 777})
        mark = items_db.env.clock.now()
        items_db.env.clock.advance(10)
        result = engine.sql("BACKUP DATABASE itemsdb", "itemsdb")
        assert "incremental" in result.message
        result = engine.sql("BACKUP DATABASE itemsdb FULL", "itemsdb")
        assert "full" in result.message
        engine.sql(f"RESTORE DATABASE itemsdb AS OF {mark} AS yesterdb")
        assert engine.sql("SELECT qty FROM yesterdb.items WHERE id = 1").scalar() == 777

    def test_backup_restore_full_stay_usable_as_identifiers(self, engine):
        """BACKUP/RESTORE/FULL are contextual words, not reserved ones."""
        engine.create_database("shop")
        with engine.session("shop") as session:
            session.execute(
                "CREATE TABLE restore (id INT NOT NULL, full INT, "
                "backup VARCHAR(16), PRIMARY KEY (id))"
            )
            session.execute("INSERT INTO restore VALUES (1, 2, 'x')")
            assert session.execute(
                "SELECT full FROM restore WHERE id = 1"
            ).scalar() == 2
            # Lowercase statement words still dispatch.
            assert "full" in session.execute("backup database shop").message

    def test_restore_autonames(self, engine, items_db):
        fill_items(items_db, 5)
        engine.sql("BACKUP DATABASE itemsdb")
        items_db.env.clock.advance(5)
        items_db.log.flush()
        engine.archives["itemsdb"].poll()
        result = engine.sql(
            f"RESTORE DATABASE itemsdb AS OF {items_db.env.clock.now()}"
        )
        assert "itemsdb_restored1" in result.message
        assert "itemsdb_restored1" in engine.databases


class TestLoginspectArchive:
    def test_dump_from_store(self, engine, items_db):
        engine.enable_archiving("itemsdb")
        fill_items(items_db, 5)
        items_db.log.flush()
        engine.archives["itemsdb"].poll()
        lines = dump_archive(engine.archives["itemsdb"].store, "itemsdb")
        assert any(line.startswith("segment [") for line in lines)
        assert any("Commit" in line for line in lines)

    def test_dump_from_directory_and_cli(self, engine, items_db, tmp_path, capsys):
        """Satellite: the CLI flag dumps persisted archived segments."""
        arch_dir = str(tmp_path / "segments")
        engine.enable_archiving("itemsdb", directory=arch_dir)
        fill_items(items_db, 5)
        items_db.log.flush()
        engine.archives["itemsdb"].poll()
        seg_files = sorted(os.listdir(arch_dir))
        assert seg_files
        # Single file.
        lines = dump_archived_segment(
            open(os.path.join(arch_dir, seg_files[-1]), "rb").read()
        )
        assert lines[0].startswith("segment [")
        # Directory through the CLI entry point.
        assert loginspect_main(["--archive", arch_dir, "--limit", "50"]) == 0
        out = capsys.readouterr().out
        assert "segment [" in out
        assert "InsertRow" in out

    def test_directory_filter_is_not_a_bare_prefix(self, env, tmp_path):
        """``shop`` must not swallow ``shop-eu``'s segments."""
        from repro.tools.loginspect import _segment_file_matches

        store = ArchiveStore(env, directory=str(tmp_path))
        store.put_segment("shop", LogFrame(8, b"x" * 16, 0.0).encode())
        store.put_segment("shop-eu", LogFrame(8, b"y" * 16, 0.0).encode())
        names = sorted(os.listdir(tmp_path))
        assert len(names) == 2
        matched = [n for n in names if _segment_file_matches(n, "shop")]
        assert len(matched) == 1
        assert matched[0].startswith("shop-0")
        assert [n for n in names if _segment_file_matches(n, "shop-eu")] != matched

    def test_dump_limit(self, engine, items_db):
        engine.enable_archiving("itemsdb")
        fill_items(items_db, 50)
        items_db.log.flush()
        engine.archives["itemsdb"].poll()
        lines = dump_archive(engine.archives["itemsdb"].store, "itemsdb", limit=10)
        assert len(lines) <= 13  # limit + segment headers + ellipsis
