"""Observability layer: registry semantics, trace shape, determinism.

The acceptance contract this file pins down, from the public surface
only (SQL and the engine API):

* one ``reset()`` clears *every* counter — the io sheet, the ad-hoc
  extras, and each subsystem stats object registered over the registry;
* a warm AS OF re-read shows a ``version_store.lookup hit=True`` span
  and **zero** undo-path log reads, while the cold run shows the chain
  walk with its coalesced-span read counts;
* two identical seeded runs produce byte-identical metric snapshots and
  span trees (everything is timed on the simulated clock).
"""

from __future__ import annotations

import json

import pytest

from repro import DatabaseConfig, Engine
from repro.config import CostModel, SimEnv
from repro.obs.export import flatten_snapshot, metrics_to_text
from repro.obs.registry import METRICS_SCHEMA, MetricsRegistry
from repro.sim.device import SAS_10K
from repro.workload import TpccScale, load_tpcc
from repro.workload.driver import TpccDriver
from tests.conftest import ITEMS_SCHEMA, fill_items

# ---------------------------------------------------------------------------
# Registry unit behavior
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_owned_and_backed(self):
        registry = MetricsRegistry()
        owned = registry.counter("a.hits")
        owned.inc()
        owned.inc(2)
        assert owned.value == 3

        class Stats:
            misses = 0

        stats = Stats()
        backed = registry.backed_counter(
            "a.misses",
            read=lambda: stats.misses,
            write=lambda v: setattr(stats, "misses", v),
        )
        backed.inc(5)
        assert stats.misses == 5  # the external storage is the storage
        stats.misses = 9
        assert backed.value == 9

    def test_counter_rejects_negative_and_kind_clash(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.n")
        with pytest.raises(ValueError):
            counter.inc(-1)
        with pytest.raises(ValueError):
            registry.gauge("a.n", lambda: 0)

    def test_reregistration_semantics(self):
        registry = MetricsRegistry()
        # Owned counters and histograms return the existing instrument.
        assert registry.counter("a.n") is registry.counter("a.n")
        assert registry.histogram("a.h") is registry.histogram("a.h")
        # Gauges and backed counters *replace* — a subsystem restart
        # rebinds the metric to its new live object.
        registry.gauge("a.g", lambda: 1)
        registry.gauge("a.g", lambda: 2)
        assert registry.snapshot()["gauges"]["a.g"] == 2

    def test_histogram_buckets_deterministic(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        snap = registry.snapshot()["histograms"]["lat"]
        assert snap["buckets"] == [[1.0, 2], [10.0, 1]]
        assert snap["overflow"] == 1
        assert snap["count"] == 4
        assert snap["sum"] == 106.5

    def test_snapshot_glob_and_flatten(self):
        registry = MetricsRegistry()
        registry.counter("pool.hits").inc(3)
        registry.counter("log.records").inc(7)
        registry.gauge("pool.bytes", lambda: 11)
        snap = registry.snapshot("pool.*")
        assert snap["schema"] == METRICS_SCHEMA
        assert list(snap["counters"]) == ["pool.hits"]
        flat = flatten_snapshot(registry.snapshot())
        assert flat == {"log.records": 7, "pool.bytes": 11, "pool.hits": 3}
        assert metrics_to_text(snap) == ["pool.bytes = 11", "pool.hits = 3"]

    def test_remove_prefix_unwinds_subsystem(self):
        registry = MetricsRegistry()
        registry.counter("replica.r1.frames").inc()
        registry.gauge("replica.r1.lag", lambda: 0)
        registry.counter("replica.r2.frames").inc()
        registry.remove_prefix("replica.r1.")
        assert registry.names("replica.*") == ["replica.r2.frames"]

    def test_reset_zeroes_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("a.n").inc(4)
        registry.histogram("a.h").observe(1.0)
        registry.gauge("a.g", lambda: 42)
        registry.reset()
        snap = registry.snapshot()
        assert snap["counters"]["a.n"] == 0
        assert snap["histograms"]["a.h"]["count"] == 0
        assert snap["gauges"]["a.g"] == 42  # derived, untouched


# ---------------------------------------------------------------------------
# IoStats shim over the registry: the one-reset contract
# ---------------------------------------------------------------------------


def _traced_engine():
    """Priced engine (clock advances under I/O) with the items table."""
    env = SimEnv(SAS_10K, SAS_10K, CostModel())
    engine = Engine(env, config=DatabaseConfig(page_size=1024, buffer_pool_pages=64))
    db = engine.create_database("vdb")
    db.create_table(ITEMS_SCHEMA)
    return engine, db


def test_one_reset_clears_every_counter(items_schema):
    """`env.stats.reset()` clears the io sheet, the ad-hoc extras *and*
    every subsystem stats object — the PR-4-era gap where
    `version_store_*` mirrors were zeroed while the store's own counters
    kept ticking is closed."""
    engine, db = _traced_engine()
    clock = engine.env.clock
    fill_items(db, 20)
    clock.advance(5)
    t_past = clock.now()
    clock.advance(5)
    with db.transaction() as txn:
        for i in range(20):
            db.update(txn, "items", (i,), {"qty": i})
    with engine.query_as_of("vdb", t_past) as snap:
        list(snap.scan("items"))
    engine.snapshot_pool.clear()
    with engine.query_as_of("vdb", t_past) as snap:
        list(snap.scan("items"))
    engine.env.stats.bump("adhoc_probe", 3)

    stats = engine.env.stats
    assert stats.log_records > 0
    assert stats.pages_prepared_asof > 0
    assert stats.version_store_publishes > 0
    assert stats.version_store_hits > 0
    assert engine.version_store.stats.hits > 0
    assert engine.snapshot_pool.stats.misses > 0

    stats.reset()

    flat = flatten_snapshot(engine.metrics_snapshot())
    nonzero = {
        name: value
        for name, value in flat.items()
        if value and (name.split(".")[-1] not in ("count", "sum"))
        and not _is_gauge(engine, name)
    }
    assert nonzero == {}, f"counters survived reset: {nonzero}"
    # The subsystem stats objects themselves were cleared too.
    assert engine.version_store.stats.hits == 0
    assert engine.snapshot_pool.stats.misses == 0
    assert stats.get("adhoc_probe") == 0


def _is_gauge(engine, name: str) -> bool:
    from repro.obs.registry import Gauge

    return type(engine.env.metrics.get(name)) is Gauge


# ---------------------------------------------------------------------------
# Trace shape: cold chain walk vs warm version-store hit
# ---------------------------------------------------------------------------


def _cold_warm_traces(engine, db):
    """(cold, warm) traces of the same AS OF read, pool dropped between."""
    clock = engine.env.clock
    fill_items(db, 20)
    clock.advance(5)
    t_past = clock.now()
    clock.advance(5)
    with db.transaction() as txn:
        for i in range(20):
            db.update(txn, "items", (i,), {"qty": i})
    with engine.trace("cold") as cold:
        with engine.query_as_of("vdb", t_past) as snap:
            list(snap.scan("items"))
    engine.snapshot_pool.clear()
    with engine.trace("warm") as warm:
        with engine.query_as_of("vdb", t_past) as snap:
            list(snap.scan("items"))
    return cold, warm


def test_cold_trace_shows_chain_walk(items_schema):
    engine, db = _traced_engine()
    cold, _ = _cold_warm_traces(engine, db)

    pin = cold.find("asof.pin")
    assert pin is not None and pin.attrs["db"] == "vdb"
    acquire = pin.find("pool.acquire")
    assert acquire is not None and acquire.attrs["hit"] is False
    assert acquire.find("asof.resolve_split") is not None
    assert acquire.find("asof.create_at_split") is not None

    walks = cold.find_all("asof.chain_walk")
    assert walks, "cold read must chain-walk"
    # Every walked page missed the store first, and the walk's I/O
    # carries the batched read counts the bench quotes.
    for walk in walks:
        probe = cold.find("version_store.lookup")
        assert probe is not None and probe.attrs["hit"] is False
    walk_io = {}
    for walk in walks:
        for key, value in walk.io.items():
            walk_io[key] = walk_io.get(key, 0) + value
    assert walk_io.get("pages_prepared_asof", 0) == len(walks)


def test_warm_trace_hits_store_and_skips_undo(items_schema):
    engine, db = _traced_engine()
    _, warm = _cold_warm_traces(engine, db)

    probes = warm.find_all("version_store.lookup")
    assert probes and all(p.attrs["hit"] is True for p in probes)
    assert warm.find("asof.chain_walk") is None
    io = warm.root.io
    assert io.get("undo_log_reads", 0) == 0
    assert io.get("undo_header_reads", 0) == 0
    assert io.get("version_store_hits", 0) == len(probes)


def test_span_nesting_and_sim_timing(items_schema):
    """Spans nest engine → pool → version-store/log-manager, and every
    span's sim interval lies inside its parent's."""
    engine, db = _traced_engine()
    cold, _ = _cold_warm_traces(engine, db)

    def check(span):
        for child in span.children:
            assert child.start_s >= span.start_s
            assert child.end_s <= span.end_s
            check(child)

    check(cold.root)
    walk = cold.find("asof.chain_walk")
    assert walk is not None
    prep = cold.find("asof.prepare_page")
    assert walk in prep.find_all("asof.chain_walk")
    # The batched log reads happen inside the chain walk.
    assert cold.find("log.read_many") is not None
    assert cold.root.elapsed_s > 0  # priced env: sim time advanced


def test_trace_is_exclusive_and_cheap_when_inactive(items_schema):
    engine, db = _traced_engine()
    with engine.trace("outer"):
        with pytest.raises(ValueError):
            with engine.trace("inner"):
                pass
    # Inactive: instrumentation points return the shared no-op span.
    tracer = engine.env.tracer
    assert not tracer.active
    from repro.obs.tracer import NULL_SPAN

    assert tracer.span("anything", k=1) is NULL_SPAN


# ---------------------------------------------------------------------------
# SQL surface: SHOW METRICS and TRACE
# ---------------------------------------------------------------------------


def _sql_engine():
    env = SimEnv(SAS_10K, SAS_10K, CostModel())
    engine = Engine(env)
    engine.sql("CREATE DATABASE shop")
    with engine.session("shop") as session:
        session.execute(
            "CREATE TABLE items (id INT NOT NULL, qty INT, PRIMARY KEY (id))"
        )
        session.execute("INSERT INTO items VALUES (1, 10), (2, 20)")
        session.execute("UPDATE items SET qty = 11 WHERE id = 1")
        session.execute("CHECKPOINT")
    return engine


def test_show_metrics_rows():
    engine = _sql_engine()
    with engine.session("shop") as session:
        result = session.execute("SHOW METRICS LIKE 'log.shop.*'")
    assert result.columns == ("name", "value")
    rows = dict(result.rows)
    assert rows["log.shop.end_lsn"] > 0
    # Unfiltered SHOW METRICS includes histogram count/sum rows.
    with engine.session("shop") as session:
        result = session.execute("SHOW METRICS")
    names = [name for name, _ in result.rows]
    assert "sql.execute_sim_s.count" in names
    assert names == sorted(names)


def test_show_metrics_parse_errors():
    engine = _sql_engine()
    from repro.errors import SqlError

    with engine.session("shop") as session:
        with pytest.raises(SqlError):
            session.execute("SHOW GAUGES")


def test_sql_trace_cold_vs_warm(items_schema):
    """The acceptance walk, from SQL only: cold TRACE shows the chain
    walk; after the pool is dropped, the warm TRACE shows the
    version-store hit and zero undo-path log reads."""
    engine = _sql_engine()
    as_of = engine.env.clock.now()
    with engine.session("shop") as session:
        session.execute("UPDATE items SET qty = 99 WHERE id = 2")
        cold = session.execute(f"TRACE SELECT * FROM items AS OF {as_of}")
        assert cold.columns == ("span",)
        cold_text = "\n".join(line for (line,) in cold.rows)
        assert "asof.chain_walk" in cold_text
        assert "version_store.lookup" in cold_text and "hit=False" in cold_text

        engine.snapshot_pool.clear()
        warm = session.execute(f"TRACE SELECT * FROM items AS OF {as_of}")
        warm_text = "\n".join(line for (line,) in warm.rows)
        assert "hit=True" in warm_text
        assert "asof.chain_walk" not in warm_text
        assert "undo_log_reads" not in warm_text
        assert "undo_header_reads" not in warm_text
        # The traced statement nests under the TRACE root.
        assert warm.rows[0][0].startswith("sql.trace")
        assert warm.rows[1][0].startswith("  sql.execute stmt=Select")


# ---------------------------------------------------------------------------
# Determinism: seeded run ⇒ byte-identical snapshots and traces
# ---------------------------------------------------------------------------


def _seeded_run():
    """One seeded TPC-C burst + cold/warm AS OF reads; returns the
    snapshot JSON and both rendered traces."""
    env = SimEnv(SAS_10K, SAS_10K, CostModel())
    engine = Engine(env)
    scale = TpccScale(
        warehouses=1, districts_per_warehouse=2, customers_per_district=6, items=30
    )
    db = engine.create_database("tpcc")
    load_tpcc(db, scale, seed=11)
    driver = TpccDriver(db, scale, seed=11, think_time_s=0.1)
    driver.run_transactions(30)
    target = env.clock.now() - 2.0
    driver.run_transactions(5)

    with engine.trace("cold") as cold:
        driver.stock_level_as_of(engine, target)
    engine.snapshot_pool.clear()
    with engine.trace("warm") as warm:
        driver.stock_level_as_of(engine, target)
    snapshot = json.dumps(engine.metrics_snapshot(), sort_keys=True)
    return snapshot, cold.render(), warm.render()


def test_seeded_runs_are_byte_identical():
    first = _seeded_run()
    second = _seeded_run()
    assert first[0] == second[0]  # metrics snapshot JSON
    assert first[1] == second[1]  # cold span tree
    assert first[2] == second[2]  # warm span tree
    # And the traces differ from each other in the expected way.
    assert any("asof.chain_walk" in line for line in first[1])
    assert any("hit=True" in line for line in first[2])


# ---------------------------------------------------------------------------
# Derived gauges: lag and occupancy without sampling
# ---------------------------------------------------------------------------


def test_replica_and_archiver_lag_gauges(tmp_path):
    env = SimEnv(SAS_10K, SAS_10K, CostModel())
    engine = Engine(env)
    engine.sql("CREATE DATABASE shop")
    engine.add_replica("shop", "standby")
    engine.enable_archiving("shop", directory=str(tmp_path))
    with engine.session("shop") as session:
        session.execute("CREATE TABLE t (id INT NOT NULL, PRIMARY KEY (id))")
        session.execute("INSERT INTO t VALUES (1), (2)")
        session.execute("CHECKPOINT")

    flat = flatten_snapshot(engine.metrics_snapshot())
    assert flat["replica.standby.apply_lag_bytes"] > 0
    assert flat["archive.shop.cursor_lag_bytes"] > 0
    assert flat["replica.standby.apply_lag_s"] > 0.0

    engine.replication_tick()
    flat = flatten_snapshot(engine.metrics_snapshot())
    assert flat["replica.standby.apply_lag_bytes"] == 0
    assert flat["archive.shop.cursor_lag_bytes"] == 0
    assert flat["replica.standby.apply_lag_s"] == 0.0
    assert flat["shipper.shop.subscribers"] == 2

    # Dropping the replica unwinds its instruments.
    engine.drop_replica("standby")
    names = engine.env.metrics.names("replica.standby.*")
    assert names == []


def test_retention_pin_gauge_tracks_pooled_split(items_schema):
    engine, db = _traced_engine()
    clock = engine.env.clock
    fill_items(db, 10)
    clock.advance(5)
    t_past = clock.now()
    clock.advance(5)
    with db.transaction() as txn:
        db.update(txn, "items", (0,), {"qty": 1})

    flat = flatten_snapshot(engine.metrics_snapshot())
    baseline = flat["retention.vdb.pin_lag_bytes"]
    with engine.query_as_of("vdb", t_past):
        flat = flatten_snapshot(engine.metrics_snapshot())
        pinned = flat["retention.vdb.pin_lag_bytes"]
    assert pinned > baseline  # the pooled split pins log behind the tail
