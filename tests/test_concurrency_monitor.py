"""Race regressions for the monitor/alert path under concurrent DDL.

The ghost-series bug class: ``DROP DATABASE victim`` purges the victim's
gauges, recorded series, and alert conditions while the monitor is
sampling on another thread. Before the monitor latch, that interleaving
could (a) raise ``RuntimeError: dictionary changed size during
iteration`` out of the recorder's series map, or (b) let a mid-flight
sample re-publish a victim series *after* the purge, leaving ghost
history and ghost alert conditions behind forever.

These tests drive exactly that collision through
``engine.run_sessions``: ticker sessions hammer ``monitor_tick()``
(advancing the sim clock so samples actually land) while another
session drops the victim database mid-storm. No sleeps — a barrier
lines the threads up (RL003).
"""

from __future__ import annotations

import threading

from repro import Engine
from repro.config import MonitorConfig, SimEnv
from repro.obs.alerts import AlertRule

TICK_ROUNDS = 60
BARRIER_TIMEOUT_S = 30.0


def _monitored_engine():
    engine = Engine(
        SimEnv.for_tests(),
        monitor_config=MonitorConfig(sample_interval_s=0.01),
    )
    for name in ("keeper", "victim"):
        engine.create_database(name)
        engine.sql(
            "CREATE TABLE items (id INT NOT NULL, qty INT, PRIMARY KEY (id))",
            name,
        )
        for i in range(8):
            engine.sql(f"INSERT INTO items VALUES ({i}, {i})", name)
    return engine


def _materialize_samples(engine, rounds=3):
    for _ in range(rounds):
        engine.env.clock.advance(engine.monitor_config.sample_interval_s)
        engine.monitor_tick()


def _victim_names(engine):
    return [
        name
        for name in engine.monitor.recorder.names()
        if "victim" in name
    ]


class TestDropVsTick:
    def test_concurrent_drop_leaves_no_ghost_series(self):
        engine = _monitored_engine()
        engine.start_monitor()
        _materialize_samples(engine)
        assert _victim_names(engine), "scenario needs live victim series"

        barrier = threading.Barrier(3)

        def ticker():
            barrier.wait(BARRIER_TIMEOUT_S)
            for _ in range(TICK_ROUNDS):
                engine.env.clock.advance(
                    engine.monitor_config.sample_interval_s
                )
                engine.monitor_tick()

        def dropper():
            barrier.wait(BARRIER_TIMEOUT_S)
            engine.drop_database("victim")

        # Any RuntimeError (dict mutated during iteration) or KeyError
        # from the tick/purge collision re-raises out of run_sessions.
        engine.run_sessions(
            [ticker, ticker, dropper], workers=3, timeout_s=BARRIER_TIMEOUT_S
        )
        # Post-drop ticks must not have resurrected the victim's series.
        _materialize_samples(engine)
        assert _victim_names(engine) == []
        assert "victim" not in engine.databases
        # The survivor keeps sampling normally.
        assert any("keeper" in n for n in engine.monitor.recorder.names())

    def test_concurrent_drop_leaves_no_ghost_alert_conditions(self):
        engine = _monitored_engine()
        engine.start_monitor(
            rules=[
                AlertRule(
                    name="victim.log.growth",
                    metric="log.victim.*",
                    threshold=-1.0,  # always firing while the series lives
                    severity="warning",
                    subsystem="wal",
                ),
            ]
        )
        _materialize_samples(engine)
        assert any(
            "victim" in row["metric"] for row in engine.monitor.alerts.rows()
        ), "scenario needs a live victim condition"

        barrier = threading.Barrier(2)

        def ticker():
            barrier.wait(BARRIER_TIMEOUT_S)
            for _ in range(TICK_ROUNDS):
                engine.env.clock.advance(
                    engine.monitor_config.sample_interval_s
                )
                engine.monitor_tick()

        def dropper():
            barrier.wait(BARRIER_TIMEOUT_S)
            engine.drop_database("victim")

        engine.run_sessions(
            [ticker, dropper], workers=2, timeout_s=BARRIER_TIMEOUT_S
        )
        _materialize_samples(engine)
        ghosts = [
            row
            for row in engine.monitor.alerts.rows()
            if "victim" in row["metric"]
        ]
        assert ghosts == [], f"ghost alert conditions survived: {ghosts}"

    def test_parallel_ticks_are_mutually_safe(self):
        """N sessions pumping monitor_tick concurrently: the monitor
        latch makes each tick atomic, so nothing raises and the sampled
        history stays strictly ordered in time."""
        engine = _monitored_engine()
        engine.start_monitor()
        barrier = threading.Barrier(4)

        def ticker():
            barrier.wait(BARRIER_TIMEOUT_S)
            for _ in range(TICK_ROUNDS):
                engine.env.clock.advance(
                    engine.monitor_config.sample_interval_s / 2
                )
                engine.monitor_tick()

        engine.run_sessions(
            [ticker] * 4, workers=4, timeout_s=BARRIER_TIMEOUT_S
        )
        recorder = engine.monitor.recorder
        for name in recorder.names():
            stamps = [t for t, _v in recorder.points(name)]
            assert stamps == sorted(stamps)
            assert len(stamps) == len(set(stamps)), (
                f"duplicate sample instants in {name}: a tick tore"
            )
