"""Log-shipping replication: shipper, replica apply, routing, recovery.

Covers the acceptance surface of the replication subsystem: bounded LSN
lag under a running TPC-C workload, point-in-time results identical
between primary and standby, catch-up across a primary crash/restart,
mid-stream shipper reconnect from the LSN cursor, and the delayed-apply
replica recovering a dropped table after the primary's retention horizon
has passed.
"""

from __future__ import annotations

import pytest

from repro import (
    Column,
    ColumnType,
    Engine,
    ReplicationError,
    RetentionExceededError,
    SimEnv,
    TableSchema,
)
from repro.replication import LogFrame, LogShipper
from repro.workload import TpccDriver, TpccScale, load_tpcc, stock_level

ITEMS = TableSchema(
    "items",
    (
        Column("id", ColumnType.INT),
        Column("name", ColumnType.STR, max_len=64),
        Column("qty", ColumnType.INT),
    ),
    key=("id",),
)

SMALL_SCALE = TpccScale(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=5,
    items=25,
)


def fill(db, count, start=0):
    with db.transaction() as txn:
        for i in range(start, start + count):
            db.insert(txn, "items", (i, f"item-{i}", i * 10))


@pytest.fixture
def engine():
    return Engine(SimEnv.for_tests())


@pytest.fixture
def primary(engine):
    db = engine.create_database("main")
    db.create_table(ITEMS)
    return db


# ---------------------------------------------------------------------------
# Basic shipping and apply
# ---------------------------------------------------------------------------


class TestCatchUp:
    def test_replica_materializes_from_log_alone(self, engine, primary):
        fill(primary, 40)
        replica = engine.add_replica("main", "standby")
        assert replica.tables() == primary.tables()
        assert list(replica.scan("items")) == list(primary.scan("items"))
        assert replica.lag_bytes() == 0

    def test_replica_follows_new_writes(self, engine, primary):
        replica = engine.add_replica("main", "standby")
        fill(primary, 30)
        with primary.transaction() as txn:
            primary.update(txn, "items", (3,), {"qty": 999})
            primary.delete(txn, "items", (4,))
        engine.replication_tick()
        assert replica.lag_bytes() == 0
        assert replica.get("items", (3,))[2] == 999
        assert replica.get("items", (4,)) is None

    def test_replica_follows_ddl(self, engine, primary):
        replica = engine.add_replica("main", "standby")
        other = TableSchema(
            "other",
            (Column("k", ColumnType.INT), Column("v", ColumnType.STR)),
            key=("k",),
        )
        primary.create_table(other)
        with primary.transaction() as txn:
            primary.insert(txn, "other", (1, "x"))
        primary.drop_table("items")
        engine.replication_tick()
        assert sorted(replica.tables()) == sorted(primary.tables())
        assert replica.get("other", (1,)) == (1, "x")

    def test_rollbacks_converge(self, engine, primary):
        replica = engine.add_replica("main", "standby")
        fill(primary, 5)
        txn = primary.begin()
        primary.insert(txn, "items", (100, "doomed", 0))
        primary.rollback(txn)
        primary.log.flush()
        engine.replication_tick()
        assert replica.get("items", (100,)) is None
        assert list(replica.scan("items")) == list(primary.scan("items"))

    def test_lag_stays_bounded_under_tpcc(self, engine):
        db = engine.create_database("tpcc")
        load_tpcc(db, SMALL_SCALE, seed=3)
        replica = engine.add_replica("tpcc", "standby")
        driver = TpccDriver(
            db, SMALL_SCALE, seed=3, pump=engine.replication_tick
        )
        max_lag = 0
        for _ in range(8):
            driver.run_transactions(25)
            max_lag = max(max_lag, replica.lag_bytes())
        # The pump runs every transaction, so the replica never falls
        # further behind than one transaction's log volume.
        assert max_lag < 64 * 1024
        engine.replication_tick()
        db.log.flush()
        engine.replication_tick()
        assert replica.lag_bytes() == 0
        # Applied state converged with the primary.
        assert list(replica.scan("district")) == list(db.scan("district"))
        assert list(replica.scan("stock")) == list(db.scan("stock"))


# ---------------------------------------------------------------------------
# Point-in-time reads served by the standby
# ---------------------------------------------------------------------------


class TestAsOfRouting:
    def test_as_of_result_identical_to_primary(self, engine):
        db = engine.create_database("tpcc")
        load_tpcc(db, SMALL_SCALE, seed=5)
        replica = engine.add_replica("tpcc", "standby")
        driver = TpccDriver(
            db,
            SMALL_SCALE,
            seed=5,
            think_time_s=0.05,
            pump=engine.replication_tick,
        )
        driver.run_transactions(120)
        target = engine.env.clock.now() - 2.0
        driver.run_transactions(40)
        engine.replication_tick()

        # The engine routes the as-of lease to the caught-up standby...
        offloaded = driver.stock_level_as_of(engine, target)
        assert engine.snapshot_pool.stats.misses == 0
        assert replica.snapshot_pool.stats.misses == 1
        # ...and the answer matches a snapshot taken on the primary.
        with engine.snapshot_pool.lease(db, target) as snap:
            direct = stock_level(snap, w_id=1, d_id=1, threshold=60)
        assert offloaded == direct

    def test_caught_up_replica_serves_as_of_now(self, engine, primary):
        fill(primary, 10)
        replica = engine.add_replica("main", "standby")
        now = engine.env.clock.now()
        with engine.query_as_of("main", now) as snap:
            assert sum(1 for _ in snap.scan("items")) == 10
        # lag == 0 → routed to the standby even though its last applied
        # commit is not strictly newer than the requested time.
        assert engine.snapshot_pool.stats.misses == 0
        assert replica.snapshot_pool.stats.misses == 1

    def test_auto_names_skip_dropped_replicas(self, engine, primary):
        first = engine.add_replica("main")
        second = engine.add_replica("main")
        assert {first.name, second.name} == {"main_replica1", "main_replica2"}
        engine.drop_replica("main_replica1")
        third = engine.add_replica("main")
        assert third.name == "main_replica1"

    def test_stale_replica_not_used_for_as_of(self, engine, primary):
        fill(primary, 10)
        engine.add_replica("main", "standby")
        # New writes the replica never hears about (no tick).
        fill(primary, 10, start=10)
        now = engine.env.clock.now()
        with engine.query_as_of("main", now) as snap:
            assert sum(1 for _ in snap.scan("items")) == 20
        # Served from the primary pool: the standby's applied state does
        # not cover "now".
        assert engine.snapshot_pool.stats.misses == 1

    def test_read_offload_routes_selects(self, engine, primary):
        fill(primary, 12)
        replica = engine.add_replica("main", "standby")
        engine.enable_read_offload()
        result = engine.sql("SELECT COUNT(*) FROM items", database="main")
        assert result.scalar() == 12
        # The replica's buffer served the scan; verify by checking the
        # replica database resolves as the session reader.
        session = engine.session("main")
        from repro.sql.parser import TableRef

        assert session._reader_for(TableRef("items")) is replica.db
        # Writes still resolve to the primary.
        assert session._writer_for(TableRef("items")) is primary
        engine.sql("INSERT INTO items VALUES (100, 'new', 0)", database="main")
        assert primary.get("items", (100,)) == (100, "new", 0)


# ---------------------------------------------------------------------------
# Crash, restart, reconnect
# ---------------------------------------------------------------------------


class TestResilience:
    def test_replica_catches_up_after_primary_crash(self, engine, primary):
        replica = engine.add_replica("main", "standby")
        fill(primary, 20)
        engine.replication_tick()
        # Writes whose tail is lost in the crash (no flush).
        txn = primary.begin()
        primary.insert(txn, "items", (500, "volatile", 0))
        primary.crash()
        primary.recover()
        fill(primary, 5, start=30)
        engine.replication_tick()
        assert replica.lag_bytes() == 0
        assert list(replica.scan("items")) == list(primary.scan("items"))
        assert replica.get("items", (500,)) is None

    def test_shipper_reconnect_resumes_from_cursor(self, engine, primary):
        fill(primary, 15)
        replica = engine.add_replica("main", "standby")
        cursor_before = replica.received_lsn
        # The original shipper dies; a new one attaches mid-stream.
        old = engine._shippers.pop("main")
        old.detach("standby")
        fill(primary, 15, start=15)
        fresh = LogShipper(primary)
        fresh.attach(replica)
        engine._shippers["main"] = fresh
        shipped = fresh.poll()
        assert shipped > 0
        assert replica.received_lsn > cursor_before
        replica.apply_ready()
        assert list(replica.scan("items")) == list(primary.scan("items"))

    def test_reattach_below_retained_log_is_rejected(self, engine, primary):
        fill(primary, 10)
        replica = engine.add_replica("main", "standby")
        engine.drop_replica("standby")
        # With the replica detached, retention may truncate its cursor away.
        primary.set_undo_interval(5.0)
        engine.env.clock.advance(30.0)
        primary.checkpoint()
        engine.env.clock.advance(30.0)
        primary.checkpoint()
        primary.enforce_retention()
        assert primary.log.start_lsn > replica.received_lsn
        with pytest.raises(ReplicationError):
            LogShipper(primary).attach(replica)

    def test_corrupt_frame_rejected(self, engine, primary):
        fill(primary, 3)
        replica = engine.add_replica("main", "standby")
        fill(primary, 3, start=3)
        log = primary.log
        start = replica.received_lsn
        frame = LogFrame(
            start,
            log.read_bytes(start, log.record_aligned_end(start, 1 << 20)),
            engine.env.clock.now(),
        )
        blob = bytearray(frame.encode())
        blob[-1] ^= 0xFF
        before = replica.received_lsn
        with pytest.raises(ReplicationError):
            replica.receive(bytes(blob))
        assert replica.received_lsn == before
        # The untampered frame lands fine afterwards.
        replica.receive(frame.encode())
        replica.apply_ready()
        assert list(replica.scan("items")) == list(primary.scan("items"))

    def test_out_of_order_frame_rejected(self, engine, primary):
        fill(primary, 3)
        replica = engine.add_replica("main", "standby")
        frame = LogFrame(replica.received_lsn + 100, b"x" * 50, 0.0)
        with pytest.raises(ReplicationError):
            replica.receive(frame.encode())


# ---------------------------------------------------------------------------
# Delayed apply: the error-recovery safety net
# ---------------------------------------------------------------------------


class TestDelayedApply:
    def _build(self, engine, delay_s=600.0):
        db = engine.create_database("main")
        db.create_table(ITEMS)
        db.set_undo_interval(60.0)  # tight primary retention
        replica = engine.add_replica("main", "delayed", apply_delay_s=delay_s)
        return db, replica

    def test_delay_holds_back_apply(self, engine):
        db, replica = self._build(engine)
        fill(db, 10)
        engine.replication_tick()
        # Received but not applied: the frames are younger than the delay.
        assert replica.received_lag_bytes() == 0
        assert replica.lag_bytes() > 0
        engine.env.clock.advance(601.0)
        engine.replication_tick()
        assert replica.lag_bytes() == 0
        assert list(replica.scan("items")) == list(db.scan("items"))

    def test_recovers_dropped_table_past_primary_retention(self, engine):
        db, replica = self._build(engine)
        fill(db, 25)
        engine.env.clock.advance(10.0)
        engine.replication_tick()
        before_drop = engine.env.clock.now()
        engine.env.clock.advance(1.0)
        db.drop_table("items")  # the application error
        engine.replication_tick()
        # Time passes; the primary's retention horizon crosses the drop.
        for _ in range(4):
            engine.env.clock.advance(45.0)
            db.checkpoint()
            engine.replication_tick()
        db.enforce_retention()
        # The primary can no longer rewind to before the drop...
        with pytest.raises(RetentionExceededError):
            with engine.query_as_of("main", before_drop):
                pass
        # ...but the delayed replica reads it from inside its window.
        with engine.query_as_of("main", before_drop, replica="delayed") as snap:
            rows = list(snap.scan("items"))
        assert len(rows) == 25
        assert replica.get("items", (0,)) is not None  # applied ≤ drop point

    def test_promote_at_point_before_error(self, engine):
        db, replica = self._build(engine)
        fill(db, 8)
        engine.env.clock.advance(5.0)
        before_drop = engine.env.clock.now()
        engine.env.clock.advance(1.0)
        db.drop_table("items")
        engine.replication_tick()
        promoted = engine.promote_replica("delayed", up_to=before_drop)
        assert "delayed" not in engine.replicas
        assert engine.database("delayed") is promoted
        assert not promoted.read_only
        # The promoted timeline stops before the drop: items is back.
        assert [r[0] for r in promoted.scan("items")] == list(range(8))
        # And it accepts new writes on the recovered timeline.
        with promoted.transaction() as txn:
            promoted.insert(txn, "items", (99, "post-promotion", 1))
        assert promoted.get("items", (99,)) == (99, "post-promotion", 1)

    def test_promote_refuses_points_already_applied_past(self, engine):
        db = engine.create_database("main")
        db.create_table(ITEMS)
        replica = engine.add_replica("main", "standby")
        fill(db, 5)
        engine.env.clock.advance(5.0)
        t_early = engine.env.clock.now()
        engine.env.clock.advance(1.0)
        fill(db, 5, start=10)
        engine.replication_tick()  # applies past t_early
        with pytest.raises(ReplicationError):
            engine.promote_replica("standby", up_to=t_early)
        # The failed promotion left the replica subscribed and following.
        assert "standby" in engine.replicas
        assert not replica.dropped
        fill(db, 2, start=30)
        engine.replication_tick()
        assert replica.lag_bytes() == 0
        assert list(replica.scan("items")) == list(db.scan("items"))

    def test_promote_rolls_back_in_flight_txns(self, engine):
        db = engine.create_database("main")
        db.create_table(ITEMS)
        replica = engine.add_replica("main", "standby")
        fill(db, 4)
        txn = db.begin()
        db.insert(txn, "items", (50, "in-flight", 0))
        db.log.flush()  # durable but uncommitted
        engine.replication_tick()
        assert replica.lag_bytes() == 0
        promoted = engine.promote_replica("standby")
        assert promoted.get("items", (50,)) is None
        assert [r[0] for r in promoted.scan("items")] == list(range(4))
        db.rollback(txn)
