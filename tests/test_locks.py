"""Lock manager tests: modes, conflicts, deadlock detection, resolvers."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError
from repro.sim.iostats import IoStats
from repro.txn.locks import LockConflictError, LockManager, LockMode
from repro.txn.transaction import Transaction


def txn(tid: int) -> Transaction:
    return Transaction(tid)


class TestBasics:
    def test_exclusive_then_release(self):
        locks = LockManager()
        t1 = txn(1)
        locks.acquire(t1, (5, b"k"), LockMode.EXCLUSIVE)
        assert locks.holders_of((5, b"k")) == {1}
        locks.release_all(t1)
        assert locks.holders_of((5, b"k")) == frozenset()
        assert t1.locks == set()

    def test_shared_compatible(self):
        locks = LockManager()
        t1, t2 = txn(1), txn(2)
        locks.acquire(t1, (5, b"k"), LockMode.SHARED)
        locks.acquire(t2, (5, b"k"), LockMode.SHARED)
        assert locks.holders_of((5, b"k")) == {1, 2}

    def test_exclusive_blocks_shared(self):
        locks = LockManager()
        t1, t2 = txn(1), txn(2)
        locks.acquire(t1, (5, b"k"), LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError) as info:
            locks.acquire(t2, (5, b"k"), LockMode.SHARED)
        assert info.value.holders == {1}

    def test_shared_blocks_exclusive(self):
        locks = LockManager()
        t1, t2 = txn(1), txn(2)
        locks.acquire(t1, (5, b"k"), LockMode.SHARED)
        with pytest.raises(LockConflictError):
            locks.acquire(t2, (5, b"k"), LockMode.EXCLUSIVE)

    def test_reentrant(self):
        locks = LockManager()
        t1 = txn(1)
        locks.acquire(t1, (5, b"k"), LockMode.EXCLUSIVE)
        locks.acquire(t1, (5, b"k"), LockMode.EXCLUSIVE)
        locks.acquire(t1, (5, b"k"), LockMode.SHARED)
        assert locks.lock_count() == 1

    def test_upgrade_sole_holder(self):
        locks = LockManager()
        t1, t2 = txn(1), txn(2)
        locks.acquire(t1, (5, b"k"), LockMode.SHARED)
        locks.acquire(t1, (5, b"k"), LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError):
            locks.acquire(t2, (5, b"k"), LockMode.SHARED)

    def test_upgrade_blocked_by_other_sharer(self):
        locks = LockManager()
        t1, t2 = txn(1), txn(2)
        locks.acquire(t1, (5, b"k"), LockMode.SHARED)
        locks.acquire(t2, (5, b"k"), LockMode.SHARED)
        with pytest.raises(LockConflictError):
            locks.acquire(t1, (5, b"k"), LockMode.EXCLUSIVE)

    def test_different_keys_independent(self):
        locks = LockManager()
        t1, t2 = txn(1), txn(2)
        locks.acquire(t1, (5, b"a"), LockMode.EXCLUSIVE)
        locks.acquire(t2, (5, b"b"), LockMode.EXCLUSIVE)
        assert locks.lock_count() == 2

    def test_stats_count_waits(self):
        locks = LockManager()
        stats = IoStats()
        t1, t2 = txn(1), txn(2)
        locks.acquire(t1, (5, b"k"), LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError):
            locks.acquire(t2, (5, b"k"), LockMode.EXCLUSIVE, stats)
        assert stats.lock_waits == 1

    def test_held_by(self):
        locks = LockManager()
        t1 = txn(1)
        locks.acquire(t1, (5, b"a"), LockMode.SHARED)
        locks.acquire(t1, (6, b"b"), LockMode.EXCLUSIVE)
        assert sorted(locks.held_by(1)) == [(5, b"a"), (6, b"b")]


class TestDeadlock:
    def test_two_party_deadlock_detected(self):
        locks = LockManager()
        stats = IoStats()
        t1, t2 = txn(1), txn(2)
        locks.acquire(t1, ("a",), LockMode.EXCLUSIVE)
        locks.acquire(t2, ("b",), LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError):
            locks.acquire(t1, ("b",), LockMode.EXCLUSIVE, stats)  # t1 waits on t2
        with pytest.raises(DeadlockError):
            locks.acquire(t2, ("a",), LockMode.EXCLUSIVE, stats)  # cycle
        assert stats.deadlocks == 1

    def test_three_party_cycle(self):
        locks = LockManager()
        t1, t2, t3 = txn(1), txn(2), txn(3)
        locks.acquire(t1, ("a",), LockMode.EXCLUSIVE)
        locks.acquire(t2, ("b",), LockMode.EXCLUSIVE)
        locks.acquire(t3, ("c",), LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError):
            locks.acquire(t1, ("b",), LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError):
            locks.acquire(t2, ("c",), LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockError):
            locks.acquire(t3, ("a",), LockMode.EXCLUSIVE)

    def test_release_clears_wait_state(self):
        locks = LockManager()
        t1, t2 = txn(1), txn(2)
        locks.acquire(t1, ("a",), LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError):
            locks.acquire(t2, ("a",), LockMode.EXCLUSIVE)
        locks.release_all(t1)
        locks.acquire(t2, ("a",), LockMode.EXCLUSIVE)  # now succeeds
        # And no stale wait edge produces a phantom deadlock.
        locks.release_all(t2)
        locks.acquire(t1, ("a",), LockMode.EXCLUSIVE)


class TestResolver:
    def test_resolver_can_unblock(self):
        """Models the as-of snapshot path: a conflicting read drives the
        in-flight transaction's undo, which releases its locks."""
        locks = LockManager()
        t1, t2 = txn(1), txn(2)
        locks.acquire(t1, ("row",), LockMode.EXCLUSIVE)

        def resolver(key, holders):
            assert holders == {1}
            locks.release_all(t1)
            return True

        locks.resolver = resolver
        locks.acquire(t2, ("row",), LockMode.SHARED)
        assert locks.holders_of(("row",)) == {2}

    def test_failing_resolver_falls_through(self):
        locks = LockManager()
        t1, t2 = txn(1), txn(2)
        locks.acquire(t1, ("row",), LockMode.EXCLUSIVE)
        locks.resolver = lambda key, holders: False
        with pytest.raises(LockConflictError):
            locks.acquire(t2, ("row",), LockMode.SHARED)
