"""Savepoint (partial rollback) tests."""

from __future__ import annotations

import pytest

from repro.errors import TransactionError
from tests.conftest import ITEMS_SCHEMA, fill_items


class TestSavepoints:
    def test_partial_rollback(self, items_db):
        db = items_db
        fill_items(db, 5)
        txn = db.begin()
        db.insert(txn, "items", (10, "keep", 1))
        db.savepoint(txn, "sp1")
        db.insert(txn, "items", (11, "drop", 2))
        db.update(txn, "items", (1,), {"qty": -1})
        db.rollback_to(txn, "sp1")
        # Post-savepoint work gone, pre-savepoint work intact, txn alive.
        db.insert(txn, "items", (12, "more", 3))
        db.commit(txn)
        assert db.get("items", (10,)) is not None
        assert db.get("items", (11,)) is None
        assert db.get("items", (12,)) is not None
        assert db.get("items", (1,))[2] == 10

    def test_empty_savepoint_noop(self, items_db):
        db = items_db
        txn = db.begin()
        db.savepoint(txn, "sp")
        db.rollback_to(txn, "sp")
        db.insert(txn, "items", (1, "a", 1))
        db.commit(txn)
        assert db.get("items", (1,)) is not None

    def test_unknown_savepoint(self, items_db):
        txn = items_db.begin()
        with pytest.raises(TransactionError):
            items_db.rollback_to(txn, "ghost")
        items_db.rollback(txn)

    def test_nested_savepoints(self, items_db):
        db = items_db
        txn = db.begin()
        db.insert(txn, "items", (1, "one", 1))
        db.savepoint(txn, "a")
        db.insert(txn, "items", (2, "two", 2))
        db.savepoint(txn, "b")
        db.insert(txn, "items", (3, "three", 3))
        db.rollback_to(txn, "b")
        assert db.get("items", (3,), txn) is None
        db.rollback_to(txn, "a")
        assert db.get("items", (2,), txn) is None
        # Savepoint b was invalidated by rolling back to a.
        with pytest.raises(TransactionError):
            db.rollback_to(txn, "b")
        db.commit(txn)
        assert [r[0] for r in db.scan("items")] == [1]

    def test_rollback_to_same_savepoint_twice(self, items_db):
        db = items_db
        txn = db.begin()
        db.savepoint(txn, "sp")
        db.insert(txn, "items", (1, "x", 1))
        db.rollback_to(txn, "sp")
        db.insert(txn, "items", (2, "y", 2))
        db.rollback_to(txn, "sp")
        db.commit(txn)
        assert list(db.scan("items")) == []

    def test_full_rollback_after_partial(self, items_db):
        db = items_db
        fill_items(db, 3)
        txn = db.begin()
        db.update(txn, "items", (0,), {"qty": 100})
        db.savepoint(txn, "sp")
        db.update(txn, "items", (1,), {"qty": 200})
        db.rollback_to(txn, "sp")
        db.update(txn, "items", (2,), {"qty": 300})
        db.rollback(txn)
        # Everything undone exactly once; CLR chains skip correctly.
        for key in range(3):
            assert db.get("items", (key,))[2] == key * 10

    def test_crash_after_partial_rollback(self, items_db):
        db = items_db
        fill_items(db, 3)
        txn = db.begin()
        db.update(txn, "items", (0,), {"qty": 100})
        db.savepoint(txn, "sp")
        db.update(txn, "items", (1,), {"qty": 200})
        db.rollback_to(txn, "sp")
        db.log.flush()
        db.crash()
        db.recover()
        # The whole loser transaction is gone, including the pre-savepoint
        # part; the partial-rollback CLRs were not compensated twice.
        assert db.get("items", (0,))[2] == 0
        assert db.get("items", (1,))[2] == 10

    def test_asof_sees_through_partial_rollback(self, engine, items_db):
        db = items_db
        fill_items(db, 3)
        mark = db.env.clock.now()
        db.env.clock.advance(5)
        txn = db.begin()
        db.update(txn, "items", (0,), {"qty": 50})
        db.savepoint(txn, "sp")
        db.update(txn, "items", (0,), {"qty": 60})
        db.rollback_to(txn, "sp")
        db.commit(txn)
        snap = engine.create_asof_snapshot("itemsdb", "past", mark)
        assert snap.get("items", (0,))[2] == 0
        assert db.get("items", (0,))[2] == 50

    def test_savepoint_in_sql(self, engine):
        engine.create_database("spdb")
        session = engine.session("spdb")
        session.execute(
            "CREATE TABLE t (k INT NOT NULL, PRIMARY KEY (k))"
        )
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1)")
        session.execute("SAVEPOINT keepme")
        session.execute("INSERT INTO t VALUES (2)")
        session.execute("ROLLBACK TO keepme")
        session.execute("COMMIT")
        assert session.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_savepoint_across_splits(self, small_db):
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 30)
        txn = db.begin()
        db.savepoint(txn, "pre_bulk")
        for i in range(30, 400):
            db.insert(txn, "items", (i, f"bulk-{i}", i))
        db.rollback_to(txn, "pre_bulk")
        db.commit(txn)
        assert [r[0] for r in db.scan("items")] == list(range(30))
