"""Property-based concurrency invariants for the pooled shared structures.

Hypothesis draws a *schedule* — which thread acquires which as-of point,
when budgets shrink, which version-store pages get published and
collected — and a barrier releases all threads at once so the drawn
operations genuinely interleave. The invariants under test are the
accounting laws the latches exist to protect:

* snapshot-pool bytes and refcounts never go negative, every lease is
  returned, and after all releases + a ``clear()`` the pool holds zero
  bytes and zero leases;
* version-store bytes equal the sum of resident version payloads at all
  times a thread can observe them, never exceed the budget after an
  evict, and drain to zero after ``purge``.

Schedules are short (threads are expensive) but every example runs a
real multi-threaded collision; no ``time.sleep`` anywhere — barriers
only (RL003).
"""

from __future__ import annotations

import threading

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimEnv
from repro.core.version_store import PageVersionStore
from repro.engine.engine import Engine
from tests.conftest import ITEMS_SCHEMA, fill_items

BARRIER_TIMEOUT_S = 30.0

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _build_history(engine):
    """A small database with three distinct as-of points."""
    db = engine.create_database("histdb")
    db.create_table(ITEMS_SCHEMA)
    points = []
    for round_no in range(3):
        fill_items(db, 5, start=round_no * 5)
        points.append(db.env.clock.now())
        db.env.clock.advance(10)
    return db, points


# ---------------------------------------------------------------------------
# SnapshotPool: concurrent acquire/release/evict schedules
# ---------------------------------------------------------------------------

#: Per-thread schedule: a list of (point_index, evict_after?) rounds.
_pool_schedule = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2), st.booleans()),
    min_size=1,
    max_size=4,
)


class TestSnapshotPoolSchedules:
    @_SETTINGS
    @given(
        schedules=st.lists(_pool_schedule, min_size=2, max_size=4),
        budget=st.integers(min_value=1 << 12, max_value=1 << 22),
    )
    def test_concurrent_lease_storms_balance(self, schedules, budget):
        engine = Engine(SimEnv.for_tests())
        db, points = _build_history(engine)
        pool = engine.snapshot_pool
        pool.set_budget(budget)
        barrier = threading.Barrier(len(schedules))
        failures = []

        def run_schedule(schedule):
            def run():
                barrier.wait(BARRIER_TIMEOUT_S)
                for point_idx, evict_after in schedule:
                    snapshot = pool.acquire(db, points[point_idx])
                    try:
                        # A leased snapshot must stay readable even while
                        # other threads evict around it.
                        assert snapshot.get("items", (0,)) is not None
                        observed = pool.total_bytes()
                        if not 0 <= observed:
                            failures.append(f"negative bytes: {observed}")
                    finally:
                        pool.release(snapshot)
                    if evict_after:
                        pool.evict_to_budget()

            return run

        engine.run_sessions(
            [run_schedule(s) for s in schedules],
            workers=len(schedules),
            timeout_s=BARRIER_TIMEOUT_S,
        )
        assert failures == []
        assert pool.active_leases() == 0
        assert pool.total_bytes() >= 0
        pool.evict_to_budget()
        assert pool.total_bytes() <= pool.budget_bytes
        pool.clear()
        assert pool.total_bytes() == 0
        assert len(pool) == 0

    @_SETTINGS
    @given(schedules=st.lists(_pool_schedule, min_size=2, max_size=3))
    def test_refcounts_never_strand_an_entry(self, schedules):
        """After every thread balances its acquires with releases, no
        pooled entry may report a nonzero refcount."""
        engine = Engine(SimEnv.for_tests())
        db, points = _build_history(engine)
        pool = engine.snapshot_pool
        barrier = threading.Barrier(len(schedules))

        def run_schedule(schedule):
            def run():
                barrier.wait(BARRIER_TIMEOUT_S)
                held = []
                for point_idx, release_now in schedule:
                    held.append(pool.acquire(db, points[point_idx]))
                    if release_now:
                        pool.release(held.pop())
                # Balance whatever is still held, in LIFO order.
                while held:
                    pool.release(held.pop())

            return run

        engine.run_sessions(
            [run_schedule(s) for s in schedules],
            workers=len(schedules),
            timeout_s=BARRIER_TIMEOUT_S,
        )
        assert pool.active_leases() == 0
        for _name, _split, refcount, _bytes in pool.entries():
            assert refcount == 0


# ---------------------------------------------------------------------------
# PageVersionStore: concurrent publish/lookup/gc schedules
# ---------------------------------------------------------------------------

#: Per-thread schedule: (page_id, version_lsn, do_gc?) rounds. The limit
#: LSN is derived as version_lsn + 10 so every publish is admissible.
_store_schedule = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=1, max_value=100),
        st.booleans(),
    ),
    min_size=1,
    max_size=6,
)


class TestVersionStoreSchedules:
    @_SETTINGS
    @given(
        schedules=st.lists(_store_schedule, min_size=2, max_size=4),
        budget=st.integers(min_value=256, max_value=1 << 16),
    )
    def test_concurrent_publish_gc_accounting(self, schedules, budget):
        store = PageVersionStore(budget_bytes=budget)
        barrier = threading.Barrier(len(schedules))
        payload = bytes(64)
        failures = []

        def run_schedule(thread_no, schedule):
            def run():
                barrier.wait(BARRIER_TIMEOUT_S)
                key = f"history-{thread_no % 2}"
                for page_id, version_lsn, do_gc in schedule:
                    store.publish(
                        key, page_id, version_lsn, version_lsn + 10, payload
                    )
                    hit = store.lookup(key, page_id, version_lsn + 5)
                    if hit is not None and hit != payload:
                        failures.append("lookup returned a torn payload")
                    observed = store.total_bytes()
                    if observed < 0:
                        failures.append(f"negative bytes: {observed}")
                    if do_gc:
                        store.gc(key, version_lsn)

            return run

        threads = [
            threading.Thread(target=run_schedule(i, s), daemon=True)
            for i, s in enumerate(schedules)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(BARRIER_TIMEOUT_S)
            assert not thread.is_alive(), "version-store schedule wedged"
        assert failures == []
        # Every payload is the same 64 bytes, so the byte ledger must be
        # exactly 64 * resident-version-count — any drift is a lost or
        # double-counted eviction.
        assert store.total_bytes() == store.version_count() * len(payload)
        assert store.total_bytes() <= store.budget_bytes
        store.evict_to_budget()
        assert store.total_bytes() <= store.budget_bytes
        store.purge("history-0")
        store.purge("history-1")
        assert store.total_bytes() == 0
        assert store.version_count() == 0
