"""Snapshot-pool satellites: pool-aware retention, background undo drain,
and ``USE <db> AS OF`` pinned sessions."""

from __future__ import annotations

import pytest

from repro.errors import (
    RetentionExceededError,
    SnapshotReadOnlyError,
    SqlExecutionError,
)

from tests.conftest import fill_items


def advance_and_checkpoint(db, seconds, steps=3):
    for _ in range(steps):
        db.env.clock.advance(seconds / steps)
        db.checkpoint()


class TestPoolAwareRetention:
    def test_pooled_split_pins_the_log(self, engine, items_db):
        db = items_db
        db.set_undo_interval(50)
        fill_items(db, 20)
        db.env.clock.advance(1.0)
        fill_items(db, 5, start=50)
        # A mid-history point: resolves to the same SplitLSN every time.
        target = 0.5
        snap = engine.snapshot_pool.acquire(db, target)
        engine.snapshot_pool.release(snap)
        pin = engine.snapshot_pool.min_pin_lsn(db.name)
        assert pin is not None
        # Age the pooled split far past the retention window.
        advance_and_checkpoint(db, 300, steps=6)
        start = db.enforce_retention()
        # Retention worked around the pooled split, like an active txn.
        assert start <= pin
        # The pooled entry still serves reads (reuse, not creation).
        hits_before = engine.snapshot_pool.stats.hits
        with engine.query_as_of(db.name, target) as view:
            assert sum(1 for _ in view.scan("items")) == 20
        assert engine.snapshot_pool.stats.hits == hits_before + 1

    def test_creation_outside_window_still_rejected(self, engine, items_db):
        db = items_db
        db.set_undo_interval(50)
        fill_items(db, 5)
        target = db.env.clock.now()
        advance_and_checkpoint(db, 300, steps=6)
        # Nothing pooled at that split: the window applies as before.
        with pytest.raises(RetentionExceededError):
            with engine.query_as_of(db.name, target):
                pass

    def test_eviction_releases_the_pin(self, engine, items_db):
        db = items_db
        db.set_undo_interval(50)
        fill_items(db, 20)
        target = db.env.clock.now()
        snap = engine.snapshot_pool.acquire(db, target)
        engine.snapshot_pool.release(snap)
        advance_and_checkpoint(db, 300, steps=6)
        pinned_start = db.enforce_retention()
        engine.snapshot_pool.clear()
        assert engine.snapshot_pool.min_pin_lsn(db.name) is None
        free_start = db.enforce_retention()
        assert free_start > pinned_start

    def test_pin_covers_in_flight_txn_chains(self, engine, items_db):
        db = items_db
        fill_items(db, 5)
        txn = db.begin()
        db.insert(txn, "items", (100, "open", 0))
        db.checkpoint()
        db.env.clock.advance(5)
        fill_items(db, 5, start=10)
        snap = engine.snapshot_pool.acquire(db, db.env.clock.now())
        # The open transaction is pending undo on the snapshot; its chain
        # (reaching back before the checkpoint) bounds the pin.
        assert snap.pending_undo_count == 1
        assert snap.retention_pin_lsn <= txn.first_lsn
        engine.snapshot_pool.release(snap)
        db.rollback(txn)


class TestUndoDrain:
    def _snap_with_pending_undo(self, engine, db):
        fill_items(db, 10)
        txn = db.begin()
        db.insert(txn, "items", (200, "in-flight", 0))
        db.update(txn, "items", (1,), {"qty": 12345})
        # A later commit puts the split after the open txn's records, so
        # the snapshot sees it in flight and owes its undo. Advancing the
        # clock makes the target a stable mid-history point.
        fill_items(db, 2, start=50)
        db.env.clock.advance(1.0)
        self.target = 0.5
        snap = engine.snapshot_pool.acquire(db, self.target)
        engine.snapshot_pool.release(snap)
        return snap, txn

    def test_drain_completes_pending_undo(self, engine, items_db):
        snap, txn = self._snap_with_pending_undo(engine, items_db)
        assert snap.pending_undo_count == 1
        drained = engine.snapshot_pool.drain()
        assert drained == 1
        assert snap.pending_undo_count == 0
        # A reader touching the formerly-locked row pays no undo wait.
        waits_before = engine.env.stats.lock_waits
        with engine.query_as_of(items_db.name, self.target) as view:
            assert view is snap
            assert view.get("items", (1,))[2] == 10  # pre-txn value
            assert view.get("items", (200,)) is None
        assert engine.env.stats.lock_waits == waits_before
        items_db.rollback(txn)

    def test_drain_budget_bounds_one_call(self, engine, items_db):
        db = items_db
        fill_items(db, 4)
        open_txns = []
        for i in range(3):
            txn = db.begin()
            db.insert(txn, "items", (300 + i, "open", 0))
            open_txns.append(txn)
        fill_items(db, 2, start=400)
        db.env.clock.advance(1.0)
        snap = engine.snapshot_pool.acquire(db, 0.5)
        engine.snapshot_pool.release(snap)
        assert snap.pending_undo_count == 3
        assert engine.snapshot_pool.drain(max_txns=2) == 2
        assert snap.pending_undo_count == 1
        assert engine.snapshot_pool.drain(max_txns=2) == 1
        assert snap.pending_undo_count == 0
        for txn in open_txns:
            db.rollback(txn)

    def test_engine_drains_replica_pools_too(self, engine, items_db):
        db = items_db
        fill_items(db, 6)
        engine.add_replica(db.name, "standby")
        with engine.query_as_of(db.name, engine.env.clock.now()) as view:
            assert sum(1 for _ in view.scan("items")) == 6
        # Served by the standby's pool; draining via the engine reaches it.
        assert engine.replicas["standby"].snapshot_pool.stats.misses == 1
        assert engine.drain_snapshot_pools() == 0  # nothing pending: no-op


class TestUseAsOfSessions:
    @pytest.fixture
    def session(self, engine, items_db):
        fill_items(items_db, 10)
        with engine.session("itemsdb") as s:
            yield s

    def test_pin_spans_statements(self, engine, session, items_db):
        t0 = engine.env.clock.now()
        engine.env.clock.advance(5)
        fill_items(items_db, 10, start=50)
        session.execute(f"USE itemsdb AS OF {t0}")
        assert session.execute("SELECT COUNT(*) FROM items").scalar() == 10
        # Several statements, one pooled snapshot: no second miss.
        session.execute("SELECT * FROM items WHERE id = 3")
        session.execute("SELECT MAX(id) FROM items")
        assert engine.snapshot_pool.stats.misses == 1
        assert engine.snapshot_pool.active_leases() == 1
        # Re-USE releases the pin and returns to the live database.
        session.execute("USE itemsdb")
        assert engine.snapshot_pool.active_leases() == 0
        assert session.execute("SELECT COUNT(*) FROM items").scalar() == 20

    def test_iso_timestamp_pin(self, engine, session, items_db):
        t0 = engine.env.clock.now()
        stamp = engine.env.clock.to_datetime(t0).isoformat(sep=" ")
        engine.env.clock.advance(5)
        fill_items(items_db, 5, start=100)
        session.execute(f"USE itemsdb AS OF '{stamp}'")
        assert session.execute("SELECT COUNT(*) FROM items").scalar() == 10

    def test_pinned_session_rejects_writes(self, engine, session):
        t0 = engine.env.clock.now()
        session.execute(f"USE itemsdb AS OF {t0}")
        with pytest.raises(SnapshotReadOnlyError):
            session.execute("INSERT INTO items VALUES (99, 'x', 0)")
        with pytest.raises(SqlExecutionError):
            session.execute("BEGIN")

    def test_pinned_session_reads_other_dbs_qualified(self, engine, session, items_db):
        other = engine.create_database("other")
        other.create_table(items_db.table("items").schema)
        with other.transaction() as txn:
            other.insert(txn, "items", (1, "elsewhere", 0))
        t0 = engine.env.clock.now()
        session.execute(f"USE itemsdb AS OF {t0}")
        # Qualified reads bypass the pin; unqualified reads use it.
        assert session.execute("SELECT COUNT(*) FROM other.items").scalar() == 1
        assert session.execute("SELECT COUNT(*) FROM items").scalar() == 10

    def test_use_as_of_requires_live_database(self, engine, session):
        engine.create_snapshot("itemsdb", "frozen")
        with pytest.raises(SqlExecutionError):
            session.execute(f"USE frozen AS OF {engine.env.clock.now()}")

    def test_use_rejected_inside_transaction(self, engine, session):
        session.execute("USE itemsdb")
        session.execute("BEGIN")
        with pytest.raises(SqlExecutionError):
            session.execute(f"USE itemsdb AS OF {engine.env.clock.now()}")
        session.execute("ROLLBACK")

    def test_session_close_releases_pin(self, engine, items_db):
        fill_items(items_db, 3)
        session = engine.session("itemsdb")
        session.execute(f"USE itemsdb AS OF {engine.env.clock.now()}")
        assert engine.snapshot_pool.active_leases() == 1
        session.close()
        assert engine.snapshot_pool.active_leases() == 0

    def test_one_shot_sql_does_not_leak_pin(self, engine, items_db):
        fill_items(items_db, 3)
        engine.sql(
            f"USE itemsdb AS OF {engine.env.clock.now()}", database="itemsdb"
        )
        assert engine.snapshot_pool.active_leases() == 0
