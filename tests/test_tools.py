"""Tests for log inspection and the consistency checker."""

from __future__ import annotations

from repro.tools import (
    check_database,
    describe_record,
    dump_log,
    log_statistics,
    page_history,
    transaction_history,
)
from repro.wal.records import (
    CommitRecord,
    FormatPageRecord,
    InsertRowRecord,
    PreformatPageRecord,
)
from tests.conftest import ITEMS_SCHEMA, fill_items


class TestLogInspect:
    def test_describe_various(self, items_db):
        fill_items(items_db, 3)
        lines = dump_log(items_db, limit=500)
        assert any("Begin" in line for line in lines)
        assert any("Commit" in line and "wall=" in line for line in lines)
        assert any("InsertRow" in line and "slot=" in line for line in lines)
        assert any("CheckpointBegin" in line for line in lines)

    def test_dump_limit(self, items_db):
        fill_items(items_db, 10)
        assert len(dump_log(items_db, limit=5)) == 5

    def test_page_history_newest_first(self, items_db):
        db = items_db
        fill_items(db, 3)
        leaf = db.table("items").accessor.page_ids()[0]
        chain = page_history(db, leaf)
        assert len(chain) >= 4  # format + 3 inserts
        lsns = [rec.lsn for rec in chain]
        assert lsns == sorted(lsns, reverse=True)
        assert isinstance(chain[-1], FormatPageRecord)

    def test_page_history_crosses_preformat(self, engine, small_config):
        """The Figure 2 structure: chain splices across re-allocation."""
        db = engine.create_database("hist", small_config)
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 100)
        pages_before = set(db.table("items").accessor.page_ids())
        db.drop_table("items")
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 100)
        reused = set(db.table("items").accessor.page_ids()) & pages_before
        assert reused
        chain = page_history(db, sorted(reused)[0], max_records=5000)
        kinds = [type(rec).__name__ for rec in chain]
        assert "PreformatPageRecord" in kinds
        # The chain continues past the preformat into the old incarnation.
        pre_at = kinds.index("PreformatPageRecord")
        assert len(kinds) > pre_at + 1

    def test_transaction_history(self, items_db):
        db = items_db
        fill_items(db, 2)
        txn = db.begin()
        db.insert(txn, "items", (7, "seven", 70))
        db.update(txn, "items", (0,), {"qty": 5})
        db.commit(txn)
        chain = transaction_history(db, txn.txn_id)
        kinds = [type(rec).__name__ for rec in chain]
        assert kinds[0] == "CommitRecord"
        assert kinds[-1] == "BeginRecord"
        assert "InsertRowRecord" in kinds and "UpdateRowRecord" in kinds

    def test_log_statistics(self, items_db):
        fill_items(items_db, 5)
        stats = log_statistics(items_db)
        assert stats["total_records"] > 10
        assert stats["total_bytes"] > 0
        assert stats["records"]["Commit"] >= 1
        assert sum(stats["bytes"].values()) == stats["total_bytes"]

    def test_describe_preformat(self):
        rec = PreformatPageRecord(image=b"\0" * 64, page_id=9)
        rec.lsn = 100
        text = describe_record(rec)
        assert "Preformat" in text and "image=64B" in text


class TestCheckDb:
    def test_healthy_database(self, items_db):
        fill_items(items_db, 50)
        report = check_database(items_db)
        assert report.ok, report.problems
        assert report.rows_checked >= 50
        assert report.objects_checked >= 3  # sys tables + items

    def test_healthy_after_churn(self, small_db):
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 500)
        with db.transaction() as txn:
            for i in range(0, 500, 2):
                db.delete(txn, "items", (i,))
        fill_items(db, 200, start=1000)
        report = check_database(db)
        assert report.ok, report.problems

    def test_healthy_after_crash_recovery(self, small_db):
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 300)
        txn = db.begin()
        db.insert(txn, "items", (9999, "loser", 0))
        db.log.flush()
        db.crash()
        db.recover()
        report = check_database(db)
        assert report.ok, report.problems

    def test_snapshot_is_consistent_database(self, engine, small_db):
        """The strongest end-to-end check: a rewound view passes the same
        structural validation as a live database."""
        db = small_db
        db.create_table(ITEMS_SCHEMA)
        fill_items(db, 200)
        mark = db.env.clock.now()
        db.env.clock.advance(10)
        with db.transaction() as txn:
            for i in range(200, 500):
                db.insert(txn, "items", (i, f"x{i}", i))
            for i in range(0, 100, 3):
                db.delete(txn, "items", (i,))
        snap = engine.create_asof_snapshot("smalldb", "checked", mark)
        report = check_database(snap)
        assert report.ok, report.problems
        assert report.rows_checked >= 200

    def test_detects_corruption(self, items_db):
        db = items_db
        fill_items(db, 20)
        leaf = db.table("items").accessor.page_ids()[0]
        with db.fetch_page(leaf) as guard:
            # Swap two records to break key order.
            a = guard.page.record(0)
            b = guard.page.record(1)
            guard.page.update_record(0, b)
            guard.page.update_record(1, a)
            guard.mark_dirty()
        report = check_database(db)
        assert not report.ok
        assert any("out of order" in problem for problem in report.problems)

    def test_detects_wrong_object(self, items_db):
        db = items_db
        fill_items(db, 5)
        leaf = db.table("items").accessor.page_ids()[0]
        with db.fetch_page(leaf) as guard:
            guard.page._set(6, 424242)  # clobber object_id
            guard.mark_dirty()
        report = check_database(db)
        assert any("belongs to object" in problem for problem in report.problems)
