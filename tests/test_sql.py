"""SQL layer tests: lexer, parser, execution, the paper's workflows."""

from __future__ import annotations

import pytest

from repro import Engine
from repro.errors import (
    CatalogError,
    SnapshotReadOnlyError,
    SqlExecutionError,
    SqlSyntaxError,
)
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import (
    Binary,
    CreateSnapshot,
    Select,
    parse_script,
)


@pytest.fixture
def session(engine):
    engine.create_database("shop")
    session = engine.session("shop")
    session.execute(
        """
        CREATE TABLE items (
            id INT NOT NULL,
            name VARCHAR(64) NOT NULL,
            qty INT NOT NULL,
            note TEXT NULL,
            PRIMARY KEY (id)
        )
        """
    )
    return session


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].ttype is TokenType.STRING
        assert tokens[0].value == "it's"

    def test_numbers(self):
        tokens = tokenize("42 3.5")
        assert [t.value for t in tokens[:-1]] == ["42", "3.5"]

    def test_qualified_name_dots(self):
        tokens = tokenize("snap.items")
        assert [t.ttype for t in tokens[:-1]] == [
            TokenType.IDENT,
            TokenType.PUNCT,
            TokenType.IDENT,
        ]

    def test_comment_skipped(self):
        tokens = tokenize("SELECT -- nothing here\n 1")
        assert len(tokens) == 3  # SELECT, 1, END

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_bad_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")


class TestParser:
    def test_select_structure(self):
        (stmt,) = parse_script(
            "SELECT id, qty FROM items WHERE qty > 5 AND id < 10 "
            "ORDER BY id DESC LIMIT 3"
        )
        assert isinstance(stmt, Select)
        assert stmt.table.name == "items"
        assert stmt.limit == 3
        assert stmt.order_by == (("id", False),)
        assert isinstance(stmt.where, Binary) and stmt.where.op == "AND"

    def test_qualified_table(self):
        (stmt,) = parse_script("SELECT * FROM snap.items")
        assert stmt.table.database == "snap"

    def test_create_snapshot_as_of(self):
        (stmt,) = parse_script(
            "CREATE DATABASE s AS SNAPSHOT OF shop AS OF '2012-03-22 17:26:25'"
        )
        assert isinstance(stmt, CreateSnapshot)
        assert stmt.source == "shop"
        assert stmt.as_of == "2012-03-22 17:26:25"

    def test_expression_precedence(self):
        (stmt,) = parse_script("SELECT 1 + 2 * 3 FROM t")
        expr = stmt.items[0][0]
        assert isinstance(expr, Binary) and expr.op == "+"
        assert isinstance(expr.right, Binary) and expr.right.op == "*"

    def test_missing_primary_key_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_script("CREATE TABLE t (a INT NOT NULL)")

    def test_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_script("FLY ME TO THE MOON")

    def test_empty_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_script("   ")

    def test_multi_statement_script(self):
        statements = parse_script("BEGIN; COMMIT;")
        assert len(statements) == 2


class TestCrudExecution:
    def test_insert_and_select(self, session):
        session.execute("INSERT INTO items VALUES (1, 'anvil', 3, NULL)")
        result = session.execute("SELECT * FROM items")
        assert result.rows == [(1, "anvil", 3, None)]
        assert result.columns == ("id", "name", "qty", "note")

    def test_insert_column_list(self, session):
        session.execute("INSERT INTO items (id, name, qty) VALUES (2, 'rope', 7)")
        result = session.execute("SELECT note FROM items WHERE id = 2")
        assert result.rows == [(None,)]

    def test_multi_row_insert(self, session):
        session.execute(
            "INSERT INTO items VALUES (1,'a',1,NULL),(2,'b',2,NULL),(3,'c',3,NULL)"
        )
        assert session.execute("SELECT COUNT(*) FROM items").scalar() == 3

    def test_where_and_projection(self, session):
        session.execute(
            "INSERT INTO items VALUES (1,'a',5,NULL),(2,'b',15,NULL),(3,'c',25,NULL)"
        )
        result = session.execute(
            "SELECT name, qty * 2 AS dbl FROM items WHERE qty >= 15 ORDER BY qty"
        )
        assert result.columns == ("name", "dbl")
        assert result.rows == [("b", 30), ("c", 50)]

    def test_update(self, session):
        session.execute("INSERT INTO items VALUES (1,'a',5,NULL),(2,'b',6,NULL)")
        result = session.execute("UPDATE items SET qty = qty + 100 WHERE id = 2")
        assert result.rowcount == 1
        assert session.execute("SELECT qty FROM items WHERE id = 2").scalar() == 106

    def test_update_key_rejected(self, session):
        session.execute("INSERT INTO items VALUES (1,'a',5,NULL)")
        with pytest.raises(SqlExecutionError):
            session.execute("UPDATE items SET id = 9")

    def test_delete(self, session):
        session.execute("INSERT INTO items VALUES (1,'a',5,NULL),(2,'b',6,NULL)")
        assert session.execute("DELETE FROM items WHERE id = 1").rowcount == 1
        assert session.execute("SELECT COUNT(*) FROM items").scalar() == 1

    def test_aggregates(self, session):
        session.execute(
            "INSERT INTO items VALUES (1,'a',10,NULL),(2,'b',20,NULL),(3,'c',30,NULL)"
        )
        result = session.execute(
            "SELECT COUNT(*), SUM(qty), AVG(qty), MIN(qty), MAX(qty) FROM items"
        )
        assert result.rows == [(3, 60, 20.0, 10, 30)]

    def test_is_null(self, session):
        session.execute("INSERT INTO items VALUES (1,'a',1,'x'),(2,'b',2,NULL)")
        assert (
            session.execute("SELECT COUNT(*) FROM items WHERE note IS NULL").scalar()
            == 1
        )
        assert (
            session.execute(
                "SELECT COUNT(*) FROM items WHERE note IS NOT NULL"
            ).scalar()
            == 1
        )

    def test_explicit_transaction(self, session):
        session.execute("BEGIN")
        session.execute("INSERT INTO items VALUES (1,'a',1,NULL)")
        session.execute("ROLLBACK")
        assert session.execute("SELECT COUNT(*) FROM items").scalar() == 0
        session.execute("BEGIN")
        session.execute("INSERT INTO items VALUES (1,'a',1,NULL)")
        session.execute("COMMIT")
        assert session.execute("SELECT COUNT(*) FROM items").scalar() == 1

    def test_show_tables(self, session):
        result = session.execute("SHOW TABLES")
        assert ("items",) in result.rows


class TestSnapshotSql:
    def test_paper_workflow_in_sql(self, session):
        """The full dropped-table recovery, end to end, in SQL."""
        engine = session.engine
        session.execute(
            "INSERT INTO items VALUES (1,'anvil',3,NULL),(2,'rope',7,NULL)"
        )
        t_good = engine.env.clock.to_datetime().replace(tzinfo=None)
        engine.env.clock.advance(60)
        session.execute("DROP TABLE items")
        assert session.execute("SHOW TABLES").rows == []

        session.execute(
            f"CREATE DATABASE shop_past AS SNAPSHOT OF shop "
            f"AS OF '{t_good.isoformat(sep=' ')}'"
        )
        # Inspect the snapshot's catalog, then reconcile via INSERT..SELECT.
        probe = engine.session("shop_past")
        assert probe.execute("SHOW TABLES").rows == [("items",)]
        session.execute(
            """
            CREATE TABLE items (
                id INT NOT NULL, name VARCHAR(64) NOT NULL,
                qty INT NOT NULL, note TEXT NULL,
                PRIMARY KEY (id)
            )
            """
        )
        result = session.execute("INSERT INTO items SELECT * FROM shop_past.items")
        assert result.rowcount == 2
        assert session.execute("SELECT COUNT(*) FROM items").scalar() == 2
        session.execute("DROP DATABASE shop_past")

    def test_alter_undo_interval(self, session):
        session.execute("ALTER DATABASE shop SET UNDO_INTERVAL = 24 HOURS")
        assert session.engine.database("shop").undo_interval_s == 24 * 3600
        session.execute("ALTER DATABASE shop SET UNDO_INTERVAL = 90 MINUTES")
        assert session.engine.database("shop").undo_interval_s == 90 * 60

    def test_snapshot_is_read_only_via_sql(self, session):
        session.execute("INSERT INTO items VALUES (1,'a',1,NULL)")
        session.execute("CREATE DATABASE snap AS SNAPSHOT OF shop")
        snap_session = session.engine.session("snap")
        with pytest.raises(SnapshotReadOnlyError):
            snap_session.execute("INSERT INTO items VALUES (2,'b',2,NULL)")
        with pytest.raises(SnapshotReadOnlyError):
            snap_session.execute("DELETE FROM items")

    def test_use_switches_target(self, session):
        session.execute("INSERT INTO items VALUES (1,'a',1,NULL)")
        session.execute("CREATE DATABASE snap AS SNAPSHOT OF shop")
        session.execute("INSERT INTO items VALUES (2,'b',2,NULL)")
        session.execute("USE snap")
        assert session.execute("SELECT COUNT(*) FROM items").scalar() == 1
        session.execute("USE shop")
        assert session.execute("SELECT COUNT(*) FROM items").scalar() == 2

    def test_show_snapshots(self, session):
        session.execute("CREATE DATABASE s1 AS SNAPSHOT OF shop")
        result = session.execute("SHOW SNAPSHOTS")
        assert result.rows == [("s1",)]

    def test_checkpoint_statement(self, session):
        result = session.execute("CHECKPOINT")
        assert result.message.startswith("CHECKPOINT")

    def test_engine_sql_shortcut(self):
        engine = Engine()
        engine.create_database("quick")
        engine.sql(
            "CREATE TABLE t (a INT NOT NULL, PRIMARY KEY (a))", database="quick"
        )
        engine.sql("INSERT INTO t VALUES (1)", database="quick")
        result = engine.sql("SELECT * FROM t", database="quick")
        assert result.rows == [(1,)]

    def test_cross_snapshot_select_without_use(self, session):
        session.execute("INSERT INTO items VALUES (1,'a',1,NULL)")
        session.execute("CREATE DATABASE snap2 AS SNAPSHOT OF shop")
        session.execute("UPDATE items SET qty = 99")
        live = session.execute("SELECT qty FROM items").scalar()
        past = session.execute("SELECT qty FROM snap2.items").scalar()
        assert (live, past) == (99, 1)


class TestErrors:
    def test_unknown_table(self, session):
        with pytest.raises(CatalogError):
            session.execute("SELECT * FROM ghost")

    def test_unknown_column(self, session):
        session.execute("INSERT INTO items VALUES (1,'a',1,NULL)")
        with pytest.raises(SqlExecutionError):
            session.execute("SELECT wat FROM items")

    def test_unknown_database(self, engine):
        session = engine.session("nope")
        with pytest.raises(SqlExecutionError):
            session.execute("SELECT * FROM t")

    def test_commit_without_begin(self, session):
        with pytest.raises(SqlExecutionError):
            session.execute("COMMIT")

    def test_mixed_aggregate_and_plain(self, session):
        with pytest.raises(SqlExecutionError):
            session.execute("SELECT COUNT(*), id FROM items")

    def test_arity_mismatch(self, session):
        with pytest.raises(SqlExecutionError):
            session.execute("INSERT INTO items (id, name) VALUES (1)")
