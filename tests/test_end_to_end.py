"""End-to-end integration: the mechanisms composed, as a user would.

Each test tells one full story — crash in the middle of time-travel
workflows, backups plus as-of on the same history, snapshots over a
recovered database, multi-database engines — checking that the pieces
compose without seams.
"""

from __future__ import annotations

import pytest

from repro.backup import restore_point_in_time, take_full_backup
from repro.core.recovery_tools import diff_table, restore_rows
from repro.workload import TpccDriver, TpccScale, load_tpcc
from repro.workload.tpcc_txns import stock_level
from tests.conftest import ITEMS_SCHEMA, fill_items

SCALE = TpccScale(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=8,
    items=40,
)


class TestCrashThenTimeTravel:
    def test_asof_works_after_crash_recovery(self, engine, items_db):
        """History written before a crash stays reachable after recovery."""
        db = items_db
        fill_items(db, 10)
        db.env.clock.advance(10)
        good = db.env.clock.now()
        db.env.clock.advance(10)
        with db.transaction() as txn:
            db.update(txn, "items", (3,), {"qty": -3})
        db.crash()
        db.recover()
        snap = engine.create_asof_snapshot("itemsdb", "precrash", good)
        assert snap.get("items", (3,))[2] == 30
        assert db.get("items", (3,))[2] == -3

    def test_crash_during_snapshot_use(self, engine, items_db):
        """Snapshots are volatile: after a crash they are gone, but the
        same instant can be re-mounted from the recovered log."""
        db = items_db
        fill_items(db, 10)
        good = db.env.clock.now()
        db.env.clock.advance(5)
        snap = engine.create_asof_snapshot("itemsdb", "victim", good)
        assert snap.get("items", (1,)) is not None
        db.crash()
        db.recover()
        engine.snapshots.pop("victim", None)
        again = engine.create_asof_snapshot("itemsdb", "victim2", good)
        assert again.get("items", (1,)) == (1, "item-1", 10)

    def test_crash_preserves_committed_compensation(self, items_db):
        from repro.core.txn_undo import undo_transaction

        db = items_db
        fill_items(db, 5)
        txn = db.begin()
        db.update(txn, "items", (1,), {"qty": 999})
        db.commit(txn)
        undo_transaction(db, txn.txn_id)
        db.crash()
        db.recover()
        assert db.get("items", (1,))[2] == 10


class TestBackupPlusAsOf:
    def test_three_ways_to_the_same_instant(self, engine, items_db):
        """Backup-restore, as-of snapshot and diff-reconcile all agree."""
        db = items_db
        fill_items(db, 20)
        backup = take_full_backup(db)
        db.env.clock.advance(10)
        with db.transaction() as txn:
            for i in range(10):
                db.update(txn, "items", (i,), {"qty": 1000 + i})
        mark = db.env.clock.now()
        db.env.clock.advance(10)
        with db.transaction() as txn:
            for i in range(10, 20):
                db.delete(txn, "items", (i,))

        snap = engine.create_asof_snapshot("itemsdb", "s", mark)
        restored = restore_point_in_time(engine, backup, db, mark, "r")
        asof_rows = list(snap.scan("items"))
        restored_rows = list(restored.scan("items"))
        assert asof_rows == restored_rows

        diff = diff_table(snap, db, "items")
        assert len(diff.only_in_past) == 10
        restore_rows(db, "items", diff)
        assert sum(1 for _ in db.scan("items")) == 20


class TestTpccFullStory:
    def test_oops_and_recover_under_load(self, engine):
        """A TPC-C system loses its order_line table mid-flight; operators
        recover it from an as-of snapshot while the workload continues."""
        db = engine.create_database("prod")
        load_tpcc(db, SCALE)
        driver = TpccDriver(db, SCALE, seed=17, think_time_s=0.02)
        driver.run_transactions(80)
        level_before = stock_level(db, 1, 1, 60)
        good = db.env.clock.now()
        db.env.clock.advance(5)

        rows_before = db.table("order_line").count()
        db.drop_table("order_line")

        # Workload parts that don't touch order_line keep running.
        from repro.workload.tpcc_txns import payment
        import random

        rng = random.Random(9)
        for seq in range(1000, 1010):
            payment(db, rng, SCALE, seq)

        from repro.core.recovery_tools import recover_dropped_table

        copied = recover_dropped_table(engine, "prod", "order_line", good)
        assert copied == rows_before
        assert stock_level(db, 1, 1, 60) == level_before
        driver.run_transactions(40)  # and the system keeps going
        assert db.table("order_line").count() > rows_before

    def test_snapshot_consistency_under_concurrent_load(self, engine):
        """A snapshot taken mid-run stays consistent while the workload
        keeps mutating the primary."""
        db = engine.create_database("busy")
        load_tpcc(db, SCALE)
        driver = TpccDriver(db, SCALE, seed=23, think_time_s=0.02)
        driver.run_transactions(60)
        mark = db.env.clock.now()
        expected_ytd = sum(w[2] for w in db.scan("warehouse"))
        expected_hist = sum(h[4] for h in db.scan("history"))
        db.env.clock.advance(1)
        snap = engine.create_asof_snapshot("busy", "mid", mark)
        driver.run_transactions(60)  # primary diverges
        got_ytd = sum(w[2] for w in snap.scan("warehouse"))
        got_hist = sum(h[4] for h in snap.scan("history"))
        assert got_ytd == pytest.approx(expected_ytd)
        assert got_hist == pytest.approx(expected_hist)
        assert sum(w[2] for w in db.scan("warehouse")) > expected_ytd


class TestMultiDatabase:
    def test_independent_histories(self, engine):
        a = engine.create_database("a")
        b = engine.create_database("b")
        for db in (a, b):
            db.create_table(ITEMS_SCHEMA)
        with a.transaction() as txn:
            a.insert(txn, "items", (1, "in-a", 1))
        mark = engine.env.clock.now()
        engine.env.clock.advance(5)
        with b.transaction() as txn:
            b.insert(txn, "items", (1, "in-b", 1))
        snap_a = engine.create_asof_snapshot("a", "sa", mark)
        snap_b = engine.create_asof_snapshot("b", "sb", mark)
        assert snap_a.get("items", (1,))[1] == "in-a"
        assert snap_b.get("items", (1,)) is None

    def test_sql_across_everything(self, engine):
        session = engine.session()
        session.execute("CREATE DATABASE main")
        session.execute("USE main")
        session.execute(
            "CREATE TABLE t (k INT NOT NULL, v VARCHAR(20) NOT NULL, PRIMARY KEY (k))"
        )
        session.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
        mark = engine.env.clock.to_datetime().replace(tzinfo=None)
        engine.env.clock.advance(60)
        session.execute("DELETE FROM t WHERE k = 1")
        session.execute(
            f"CREATE DATABASE past AS SNAPSHOT OF main AS OF '{mark.isoformat(sep=' ')}'"
        )
        merged = session.execute(
            "INSERT INTO t SELECT * FROM past.t WHERE k = 1"
        )
        assert merged.rowcount == 1
        assert session.execute("SELECT COUNT(*) FROM t").scalar() == 2
