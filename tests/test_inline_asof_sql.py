"""Inline ``SELECT ... FROM t AS OF '<time>'`` — the point-in-time query
of the paper's title with no snapshot DDL at all."""

from __future__ import annotations

import pytest

from repro.errors import (
    SnapshotReadOnlyError,
    SqlExecutionError,
    SqlSyntaxError,
)
from repro.sql.parser import Select, parse_script


@pytest.fixture
def session(engine):
    engine.create_database("shop")
    session = engine.session("shop")
    session.execute(
        """
        CREATE TABLE items (
            id INT NOT NULL,
            name VARCHAR(64) NOT NULL,
            qty INT NOT NULL,
            PRIMARY KEY (id)
        )
        """
    )
    session.execute("INSERT INTO items VALUES (1, 'one', 10), (2, 'two', 20)")
    return session


def mark(engine) -> float:
    now = engine.env.clock.now()
    engine.env.clock.advance(10)
    return now


class TestParsing:
    def test_as_of_string(self):
        (stmt,) = parse_script(
            "SELECT * FROM items AS OF '2012-03-22 17:26:25.473'"
        )
        assert isinstance(stmt, Select)
        assert stmt.table.as_of == "2012-03-22 17:26:25.473"

    def test_as_of_number(self):
        (stmt,) = parse_script("SELECT * FROM items AS OF 123.5")
        assert stmt.table.as_of == 123.5

    def test_qualified_table_as_of(self):
        (stmt,) = parse_script("SELECT * FROM shop.items AS OF '2012-01-01'")
        assert stmt.table.database == "shop"
        assert stmt.table.as_of == "2012-01-01"

    def test_as_of_composes_with_clauses(self):
        (stmt,) = parse_script(
            "SELECT id FROM items AS OF 5 WHERE qty > 1 ORDER BY id LIMIT 2"
        )
        assert stmt.table.as_of == 5.0
        assert stmt.where is not None
        assert stmt.limit == 2

    def test_plain_select_has_no_as_of(self):
        (stmt,) = parse_script("SELECT * FROM items")
        assert stmt.table.as_of is None

    def test_as_requires_of(self):
        with pytest.raises(SqlSyntaxError):
            parse_script("SELECT * FROM items AS alias")

    def test_as_of_requires_value(self):
        with pytest.raises(SqlSyntaxError):
            parse_script("SELECT * FROM items AS OF WHERE qty > 1")

    def test_as_of_rejected_on_write_targets(self):
        with pytest.raises(SqlSyntaxError):
            parse_script("UPDATE items AS OF 5 SET qty = 1")
        with pytest.raises(SqlSyntaxError):
            parse_script("DELETE FROM items AS OF 5")


class TestExecution:
    def test_time_travel_without_ddl(self, engine, session):
        t0 = mark(engine)
        session.execute("UPDATE items SET qty = 999 WHERE id = 1")
        result = session.execute(f"SELECT qty FROM items AS OF {t0} WHERE id = 1")
        assert result.scalar() == 10
        assert session.execute("SELECT qty FROM items WHERE id = 1").scalar() == 999
        # No named snapshot was created anywhere.
        assert not engine.snapshots
        assert session.execute("SHOW SNAPSHOTS").rowcount == 0

    def test_consecutive_queries_reuse_pooled_snapshot(self, engine, session):
        t0 = mark(engine)
        session.execute("DELETE FROM items WHERE id = 2")
        first = session.execute(f"SELECT COUNT(*) FROM items AS OF {t0}")
        bytes_after_first = engine.snapshot_pool.total_bytes()
        second = session.execute(f"SELECT COUNT(*) FROM items AS OF {t0}")
        assert first.scalar() == second.scalar() == 2
        # The second query hit the pool: no new snapshot, no new side file.
        assert engine.snapshot_pool.stats.misses == 1
        assert engine.snapshot_pool.stats.hits == 1
        assert engine.snapshot_pool.total_bytes() == bytes_after_first

    def test_iso_timestamp_string(self, engine, session):
        t0 = mark(engine)
        session.execute("UPDATE items SET qty = -1 WHERE id = 2")
        moment = engine.env.clock.to_datetime(t0)
        iso = moment.replace(tzinfo=None).isoformat(sep=" ")
        result = session.execute(f"SELECT qty FROM items AS OF '{iso}' WHERE id = 2")
        assert result.scalar() == 20

    def test_qualified_name_no_use_needed(self, engine, session):
        t0 = mark(engine)
        session.execute("UPDATE items SET qty = 0 WHERE id = 1")
        fresh = engine.session()  # no current database at all
        result = fresh.execute(f"SELECT qty FROM shop.items AS OF {t0} WHERE id = 1")
        assert result.scalar() == 10

    def test_inline_reconcile_insert_select(self, engine, session):
        t0 = mark(engine)
        session.execute("DELETE FROM items")
        assert session.execute("SELECT COUNT(*) FROM items").scalar() == 0
        session.execute(f"INSERT INTO items SELECT * FROM items AS OF {t0}")
        assert session.execute("SELECT COUNT(*) FROM items").scalar() == 2

    def test_aggregates_and_order_by_as_of(self, engine, session):
        t0 = mark(engine)
        session.execute("INSERT INTO items VALUES (3, 'three', 30)")
        result = session.execute(
            f"SELECT SUM(qty), COUNT(*) FROM items AS OF {t0}"
        )
        assert result.rows == [(30, 2)]
        ordered = session.execute(
            f"SELECT id FROM items AS OF {t0} ORDER BY id DESC"
        )
        assert [row[0] for row in ordered.rows] == [2, 1]

    def test_as_of_against_named_snapshot_rejected(self, engine, session):
        t0 = mark(engine)
        engine.create_asof_snapshot("shop", "fixed", t0)
        with pytest.raises(SqlExecutionError):
            session.execute(f"SELECT * FROM fixed.items AS OF {t0}")

    def test_as_of_needs_current_database(self, engine, session):
        t0 = mark(engine)
        fresh = engine.session()
        with pytest.raises(SqlExecutionError):
            fresh.execute(f"SELECT * FROM items AS OF {t0}")

    def test_as_of_is_read_only_via_writer_path(self, engine, session):
        from repro.sql.parser import TableRef

        with pytest.raises(SnapshotReadOnlyError):
            session._writer_for(TableRef("items", as_of=1.0))

    def test_as_of_now_sees_latest_committed(self, engine, session):
        session.execute("UPDATE items SET qty = 777 WHERE id = 1")
        now = engine.env.clock.now()
        result = session.execute(f"SELECT qty FROM items AS OF {now} WHERE id = 1")
        assert result.scalar() == 777
